package fafnir

import (
	"math/rand"
	"testing"

	"fafnir/internal/header"
	"fafnir/internal/tensor"
)

func entry(val float32, indices []header.Index, queries ...header.IndexSet) Entry {
	return Entry{
		Value:  tensor.Vector{val},
		Header: header.Header{Indices: header.NewIndexSet(indices...), Queries: queries},
	}
}

func TestProcessPEReduceBothDirectionsDedup(t *testing.T) {
	a := entry(1, []header.Index{1}, header.NewIndexSet(2))
	b := entry(2, []header.Index{2}, header.NewIndexSet(1))
	out, st, err := ProcessPE(tensor.OpSum, []Entry{a}, []Entry{b})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("outputs = %d, want 1 (duplicate from both directions merged)", len(out))
	}
	if out[0].Value[0] != 3 {
		t.Fatalf("value = %v, want 3", out[0].Value[0])
	}
	if !out[0].Header.Indices.Equal(header.NewIndexSet(1, 2)) {
		t.Fatalf("indices %v", out[0].Header.Indices)
	}
	if !out[0].Header.Complete() {
		t.Fatal("reduction to completion not marked complete")
	}
	if st.Reduces != 2 || st.MergedDuplicates != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestProcessPEForwardNoMatch(t *testing.T) {
	a := entry(1, []header.Index{1}, header.NewIndexSet(3))
	b := entry(2, []header.Index{2}, header.NewIndexSet(4))
	out, st, err := ProcessPE(tensor.OpSum, []Entry{a}, []Entry{b})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("outputs = %d, want 2", len(out))
	}
	if st.Reduces != 0 || st.Forwards != 2 {
		t.Fatalf("stats %+v", st)
	}
	for _, e := range out {
		if e.Header.Complete() {
			t.Fatalf("forwarded entry marked complete: %v", e)
		}
	}
}

func TestProcessPEOneSidedInput(t *testing.T) {
	// "in some cases ... only one of the inputs exists, which automatically
	// leads to a forward action."
	a := entry(5, []header.Index{4}, header.NewIndexSet(7))
	out, st, err := ProcessPE(tensor.OpSum, []Entry{a}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Value[0] != 5 {
		t.Fatalf("out %v", out)
	}
	if st.Reduces != 0 || st.Forwards != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestProcessPEEmptyInputs(t *testing.T) {
	out, st, err := ProcessPE(tensor.OpSum, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || st.Outputs != 0 {
		t.Fatalf("non-empty result from empty inputs: %v", out)
	}
}

func TestProcessPECompleteEntryForwards(t *testing.T) {
	done := Entry{
		Value:  tensor.Vector{9},
		Header: header.Header{Indices: header.NewIndexSet(1, 2), Queries: []header.IndexSet{nil}},
	}
	other := entry(1, []header.Index{5}, header.NewIndexSet(6))
	out, _, err := ProcessPE(tensor.OpSum, []Entry{done}, []Entry{other})
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, e := range out {
		if e.Header.Indices.Equal(header.NewIndexSet(1, 2)) && e.Header.Complete() && e.Value[0] == 9 {
			found = true
		}
	}
	if !found {
		t.Fatalf("complete entry did not pass through: %v", out)
	}
}

// TestProcessPEMergePaperExample reproduces the PE(2|3) merge of Fig. 6d:
// the same value (indices {32,83}) is needed by two queries with different
// remaining sets, and the merge unit combines them into one output with
// header [indices:32,83 | queries:{11,77} {26}].
func TestProcessPEMergePaperExample(t *testing.T) {
	a := entry(3, []header.Index{32},
		header.NewIndexSet(83, 11, 77), // from query a
		header.NewIndexSet(83, 26),     // from query b
	)
	b := entry(4, []header.Index{83},
		header.NewIndexSet(32, 11, 77),
		header.NewIndexSet(32, 26),
	)
	out, st, err := ProcessPE(tensor.OpSum, []Entry{a}, []Entry{b})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("outputs = %d, want 1: %v", len(out), out)
	}
	e := out[0]
	if !e.Header.Indices.Equal(header.NewIndexSet(32, 83)) {
		t.Fatalf("indices %v", e.Header.Indices)
	}
	if len(e.Header.Queries) != 2 {
		t.Fatalf("queries %v", e.Header.Queries)
	}
	if !e.Header.HasQuery(header.NewIndexSet(11, 77)) || !e.Header.HasQuery(header.NewIndexSet(26)) {
		t.Fatalf("merged queries wrong: %v", e.Header.Queries)
	}
	if e.Value[0] != 7 {
		t.Fatalf("value %v", e.Value[0])
	}
	// Four reduce actions fired (two per direction); three raw outputs were
	// folded away by the merge unit.
	if st.Reduces != 4 || st.MergedDuplicates != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestProcessPEMaximalMatch(t *testing.T) {
	// a's query set covers both b1 {2} and b2 {2,3}; the PE must pick the
	// maximal partner b2 (the complete partial reduction of that subtree)
	// and complete the query, not strand it on the sub-chain b1.
	a := entry(1, []header.Index{1}, header.NewIndexSet(2, 3))
	b1 := entry(10, []header.Index{2}, header.NewIndexSet(9))
	b2 := entry(20, []header.Index{2, 3}, header.NewIndexSet(1))
	out, _, err := ProcessPE(tensor.OpSum, []Entry{a}, []Entry{b1, b2})
	if err != nil {
		t.Fatal(err)
	}
	var complete *Entry
	for i := range out {
		if out[i].Header.Indices.Equal(header.NewIndexSet(1, 2, 3)) {
			complete = &out[i]
		}
	}
	if complete == nil {
		t.Fatalf("no complete output: %v", out)
	}
	if complete.Value[0] != 21 {
		t.Fatalf("value = %v, want 21 (a+b2)", complete.Value[0])
	}
	if !complete.Header.Complete() {
		t.Fatal("maximal reduction not complete")
	}
	// b1 must forward for its own query.
	var b1Out bool
	for _, e := range out {
		if e.Header.Indices.Equal(header.NewIndexSet(2)) && e.Header.HasQuery(header.NewIndexSet(9)) {
			b1Out = true
		}
	}
	if !b1Out {
		t.Fatalf("b1 not forwarded: %v", out)
	}
}

func TestProcessPEPartialReduce(t *testing.T) {
	// Query {1,2,7}: 1 and 2 meet here, 7 lives higher in the tree.
	a := entry(1, []header.Index{1}, header.NewIndexSet(2, 7))
	b := entry(2, []header.Index{2}, header.NewIndexSet(1, 7))
	out, _, err := ProcessPE(tensor.OpSum, []Entry{a}, []Entry{b})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("outputs %v", out)
	}
	e := out[0]
	if !e.Header.Indices.Equal(header.NewIndexSet(1, 2)) {
		t.Fatalf("indices %v", e.Header.Indices)
	}
	if len(e.Header.Queries) != 1 || !e.Header.Queries[0].Equal(header.NewIndexSet(7)) {
		t.Fatalf("queries %v", e.Header.Queries)
	}
	if e.Header.Complete() {
		t.Fatal("partial reduction marked complete")
	}
}

func TestProcessPEDimensionError(t *testing.T) {
	a := Entry{Value: tensor.Vector{1, 2}, Header: header.Header{Indices: header.NewIndexSet(1), Queries: []header.IndexSet{header.NewIndexSet(2)}}}
	b := Entry{Value: tensor.Vector{1}, Header: header.Header{Indices: header.NewIndexSet(2), Queries: []header.IndexSet{header.NewIndexSet(1)}}}
	if _, _, err := ProcessPE(tensor.OpSum, []Entry{a}, []Entry{b}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestSelfMergeSameRankPair(t *testing.T) {
	// Two indices of one query on the same input stream must combine.
	e1 := entry(1, []header.Index{1}, header.NewIndexSet(2, 7))
	e2 := entry(2, []header.Index{2}, header.NewIndexSet(1, 7))
	out, st, err := SelfMerge(tensor.OpSum, []Entry{e1, e2})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("outputs %v", out)
	}
	if !out[0].Header.Indices.Equal(header.NewIndexSet(1, 2)) || out[0].Value[0] != 3 {
		t.Fatalf("merged entry wrong: %v val=%v", out[0].Header, out[0].Value)
	}
	if st.Reduces == 0 {
		t.Fatal("no reduces counted")
	}
}

func TestSelfMergeFig6Table4(t *testing.T) {
	// Fig. 6: indices 44 and 94 both live in table 4. Query c needs both;
	// query a needs only 44. After the stream merge the input must hold the
	// combined (44,94) chain for c and 44 alone for a.
	e44 := entry(4, []header.Index{44},
		header.NewIndexSet(11, 32, 83, 77), // query a remaining
		header.NewIndexSet(50, 11, 94, 26), // query c remaining
	)
	e94 := entry(9, []header.Index{94},
		header.NewIndexSet(50, 44, 11, 26), // query c remaining
	)
	out, _, err := SelfMerge(tensor.OpSum, []Entry{e44, e94})
	if err != nil {
		t.Fatal(err)
	}
	var combined, alone bool
	for _, e := range out {
		if e.Header.Indices.Equal(header.NewIndexSet(44, 94)) {
			combined = true
			if e.Value[0] != 13 {
				t.Fatalf("combined value %v", e.Value[0])
			}
			if !e.Header.HasQuery(header.NewIndexSet(50, 11, 26)) {
				t.Fatalf("combined queries %v", e.Header.Queries)
			}
		}
		if e.Header.Indices.Equal(header.NewIndexSet(44)) && e.Header.HasQuery(header.NewIndexSet(11, 32, 83, 77)) {
			alone = true
		}
	}
	if !combined {
		t.Fatalf("44+94 not merged for query c: %v", out)
	}
	if !alone {
		t.Fatalf("44 not kept alone for query a: %v", out)
	}
}

func TestSelfMergeNoOpWhenDisjoint(t *testing.T) {
	e1 := entry(1, []header.Index{1}, header.NewIndexSet(5))
	e2 := entry(2, []header.Index{2}, header.NewIndexSet(6))
	out, st, err := SelfMerge(tensor.OpSum, []Entry{e1, e2})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || st.Reduces != 0 {
		t.Fatalf("unexpected merge: %v %+v", out, st)
	}
}

func TestSelfMergeThreeFragments(t *testing.T) {
	// Query {1,2,3,9} with 1, 2, 3 all on one stream.
	q := header.NewIndexSet(1, 2, 3, 9)
	mk := func(v float32, own header.Index) Entry {
		return entry(v, []header.Index{own}, q.Minus(header.NewIndexSet(own)))
	}
	out, _, err := SelfMerge(tensor.OpSum, []Entry{mk(1, 1), mk(2, 2), mk(3, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("outputs %v", out)
	}
	if !out[0].Header.Indices.Equal(header.NewIndexSet(1, 2, 3)) || out[0].Value[0] != 6 {
		t.Fatalf("three-way merge wrong: %v %v", out[0].Header, out[0].Value)
	}
	if len(out[0].Header.Queries) != 1 || !out[0].Header.Queries[0].Equal(header.NewIndexSet(9)) {
		t.Fatalf("remaining %v", out[0].Header.Queries)
	}
}

func TestPEStatsAdd(t *testing.T) {
	a := PEStats{InA: 1, InB: 2, Compares: 3, Reduces: 4, Forwards: 5, MergedDuplicates: 6, Outputs: 7}
	b := a
	a.Add(b)
	if a.InA != 2 || a.Outputs != 14 || a.Compares != 6 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestEntryCloneAndString(t *testing.T) {
	e := entry(1, []header.Index{3}, header.NewIndexSet(4))
	c := e.Clone()
	c.Value[0] = 9
	c.Header.Indices[0] = 9
	if e.Value[0] != 1 || e.Header.Indices[0] != 3 {
		t.Fatal("Clone aliased")
	}
	if e.String() == "" {
		t.Fatal("empty String")
	}
}

// Property: PE outputs always have unique indices keys, and no query set
// ever intersects its own entry's indices.
func TestQuickProcessPEInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 200; trial++ {
		mkSide := func(base header.Index) []Entry {
			n := rng.Intn(4)
			var side []Entry
			for i := 0; i < n; i++ {
				own := base + header.Index(rng.Intn(4))
				var qs []header.IndexSet
				for k := 0; k < 1+rng.Intn(2); k++ {
					var raw []header.Index
					for m := 0; m < rng.Intn(5); m++ {
						raw = append(raw, header.Index(rng.Intn(16)))
					}
					qs = append(qs, header.NewIndexSet(raw...).Minus(header.NewIndexSet(own)))
				}
				side = append(side, entry(float32(rng.Intn(5)), []header.Index{own}, qs...))
			}
			merged, _, err := SelfMerge(tensor.OpSum, side)
			if err != nil {
				t.Fatal(err)
			}
			return merged
		}
		out, st, err := ProcessPE(tensor.OpSum, mkSide(0), mkSide(8))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		seen := map[string]bool{}
		for _, e := range out {
			key := e.Header.Indices.Key()
			if seen[key] {
				t.Fatalf("trial %d: duplicate indices key in outputs", trial)
			}
			seen[key] = true
			for _, q := range e.Header.Queries {
				if q.Intersects(e.Header.Indices) {
					t.Fatalf("trial %d: query set %v intersects indices %v", trial, q, e.Header.Indices)
				}
			}
		}
		if st.Outputs != len(out) {
			t.Fatalf("trial %d: stats.Outputs %d != %d", trial, st.Outputs, len(out))
		}
	}
}
