package fafnir

import (
	"fmt"
	"slices"

	"fafnir/internal/header"
	"fafnir/internal/tensor"
)

// Entry is one value in flight through the tree: the (partially reduced)
// embedding data and its header. Values are treated as immutable once inside
// an entry; reduce actions clone before combining.
type Entry struct {
	Value  tensor.Vector
	Header header.Header
}

// Clone deep-copies the entry.
func (e Entry) Clone() Entry {
	return Entry{Value: e.Value.Clone(), Header: e.Header.Clone()}
}

// String renders the entry's header (values are elided).
func (e Entry) String() string {
	return fmt.Sprintf("Entry%s", e.Header.String())
}

// PEStats counts what one PE invocation did, for the timing model and for
// validating the paper's min(nm+n+m, B) output bound.
type PEStats struct {
	// InA and InB are the input occupancies.
	InA, InB int
	// Compares counts header comparisons performed (each query set of each
	// entry against each opposite entry's indices field).
	Compares int
	// Reduces counts reduce actions (a value pair combined).
	Reduces int
	// Forwards counts forward actions (a query set passed through).
	Forwards int
	// MergedDuplicates counts raw outputs eliminated or folded by the
	// merge unit.
	MergedDuplicates int
	// Outputs is the post-merge output occupancy.
	Outputs int
}

// Add accumulates o into s.
func (s *PEStats) Add(o PEStats) {
	s.InA += o.InA
	s.InB += o.InB
	s.Compares += o.Compares
	s.Reduces += o.Reduces
	s.Forwards += o.Forwards
	s.MergedDuplicates += o.MergedDuplicates
	s.Outputs += o.Outputs
}

// fold is the merge unit: raw PE outputs sharing an Indices set collapse into
// one entry whose Queries fields are concatenated and canonicalized, and the
// result is sorted by canonical indices key — the step that makes PE
// evaluation deterministic regardless of input order.
//
// This is the sort-based equivalent of the old map-keyed merge: a stable sort
// on Indices.Compare (byte-order-equal to the old map key) brings duplicates
// adjacent while preserving arrival order within a group, so the group's
// representative value is still the first-arriving one, and concatenating the
// group's Queries then normalizing once yields the same sorted deduped set
// union the old pairwise MergeQueries chain produced. Distinct groups carry
// distinct Indices sets, so the sort gives the same unique total order the
// old finalize sort did.
func (ws *workScratch) fold(raw []Entry, stats *PEStats) []Entry {
	if len(raw) == 0 {
		stats.Outputs = 0
		return nil
	}
	// Sort a position permutation instead of the entries themselves: moving
	// int32s beats moving 72-byte structs, and breaking comparison ties by
	// position makes the unstable sort reproduce the stable order exactly.
	ord := ws.order[:0]
	for i := range raw {
		ord = append(ord, int32(i))
	}
	ws.order = ord
	slices.SortFunc(ord, func(a, b int32) int {
		if c := raw[a].Header.Indices.Compare(raw[b].Header.Indices); c != 0 {
			return c
		}
		return int(a) - int(b)
	})
	groups := 1
	for i := 1; i < len(ord); i++ {
		if !raw[ord[i]].Header.Indices.Equal(raw[ord[i-1]].Header.Indices) {
			groups++
		}
	}
	out := ws.ents.alloc(groups)
	k := 0
	for i := 0; i < len(ord); {
		first := &raw[ord[i]]
		j := i + 1
		nq := len(first.Header.Queries)
		for j < len(ord) && raw[ord[j]].Header.Indices.Equal(first.Header.Indices) {
			nq += len(raw[ord[j]].Header.Queries)
			j++
		}
		if j == i+1 {
			out[k] = *first
		} else {
			buf := ws.qs.alloc(nq)[:0]
			for m := i; m < j; m++ {
				buf = append(buf, raw[ord[m]].Header.Queries...)
			}
			h := header.Header{Indices: first.Header.Indices, Queries: buf}
			h.Normalize()
			out[k] = Entry{Value: first.Value, Header: h}
			stats.MergedDuplicates += j - i - 1
		}
		k++
		i = j
	}
	stats.Outputs = len(out)
	return out
}

// processPE is ProcessPE on a caller-provided scratch: every action allocates
// from the scratch's arenas, so the returned entries are valid only while the
// scratch is. See ProcessPE for the semantics.
func processPE(ws *workScratch, op tensor.ReduceOp, inA, inB []Entry) ([]Entry, PEStats, error) {
	stats := PEStats{InA: len(inA), InB: len(inB)}
	raw := ws.raw[:0]

	process := func(side, opp []Entry) error {
		for i := range side {
			e := &side[i]
			if len(e.Header.Queries) == 0 {
				// Nothing owed by any query: pass through untouched.
				// Headers are immutable in flight, so the output may
				// share the input's sets.
				stats.Forwards++
				raw = append(raw, Entry{Value: e.Value, Header: e.Header})
				continue
			}
			for _, qs := range e.Header.Queries {
				var best *Entry
				for oi := range opp {
					o := &opp[oi]
					stats.Compares++
					if o.Header.Indices.Empty() || !qs.ContainsAll(o.Header.Indices) {
						continue
					}
					if best == nil || o.Header.Indices.Len() > best.Header.Indices.Len() {
						best = o
					}
				}
				if best == nil {
					stats.Forwards++
					raw = append(raw, Entry{
						Value:  e.Value,
						Header: header.Header{Indices: e.Header.Indices, Queries: ws.qset1(qs)},
					})
					continue
				}
				v := ws.cloneVec(e.Value)
				if err := op.Apply(v, best.Value); err != nil {
					return fmt.Errorf("fafnir: reduce value: %w", err)
				}
				stats.Reduces++
				raw = append(raw, Entry{
					Value: v,
					Header: header.Header{
						Indices: ws.union(e.Header.Indices, best.Header.Indices),
						Queries: ws.qset1(ws.minus(qs, best.Header.Indices)),
					},
				})
			}
		}
		return nil
	}
	err := process(inA, inB)
	if err == nil {
		err = process(inB, inA)
	}
	ws.raw = raw
	if err != nil {
		return nil, stats, err
	}
	return ws.fold(raw, &stats), stats, nil
}

// selfMerge is SelfMerge on a caller-provided scratch; see SelfMerge for the
// semantics and processPE for the arena lifetime rules.
//
// Grouping is sort-based: every (entry, remaining-set) pair is tagged with
// its full query, and a stable sort on (full-query key) brings each group's
// members adjacent in ascending stream order — the same member order the old
// map-of-groups built — before the usual canonical-order reduction.
func selfMerge(ws *workScratch, op tensor.ReduceOp, entries []Entry) ([]Entry, PEStats, error) {
	var total PEStats

	pairs := ws.pairs[:0]
	for i := range entries {
		e := &entries[i]
		if len(e.Header.Queries) == 0 {
			continue // passthrough, re-emitted after the groups
		}
		for _, qs := range e.Header.Queries {
			pairs = append(pairs, selfPair{full: ws.union(e.Header.Indices, qs), member: i})
		}
	}
	ws.pairs = pairs
	// Position-permutation sort with position tiebreak: identical order to a
	// stable sort without moving the pair structs (see fold). fold reuses
	// ws.order afterwards, by which point the group loop here is done.
	ord := ws.order[:0]
	for i := range pairs {
		ord = append(ord, int32(i))
	}
	ws.order = ord
	slices.SortFunc(ord, func(a, b int32) int {
		if c := pairs[a].full.Compare(pairs[b].full); c != 0 {
			return c
		}
		return int(a) - int(b)
	})

	raw := ws.raw[:0]
	defer func() { ws.raw = raw }()
	for i := 0; i < len(ord); {
		full := pairs[ord[i]].full
		j := i + 1
		for j < len(ord) && pairs[ord[j]].full.Equal(full) {
			j++
		}
		// Collect the group's members: stream positions ascending, duplicate
		// positions (one entry owing the same full query via two remaining
		// sets) dropped.
		members := ws.members[:0]
		for m := i; m < j; m++ {
			if pm := pairs[ord[m]].member; len(members) == 0 || members[len(members)-1] != pm {
				members = append(members, pm)
			}
		}
		ws.members = members

		// Reduce the group: members combine in canonical (indices-key) order.
		slices.SortFunc(members, func(a, b int) int {
			return entries[a].Header.Indices.Compare(entries[b].Header.Indices)
		})
		first := entries[members[0]]
		covered := first.Header.Indices
		value := first.Value
		for _, mi := range members[1:] {
			m := entries[mi]
			if covered.ContainsAll(m.Header.Indices) {
				continue // duplicate read of the same data (non-dedup stream)
			}
			if covered.Intersects(m.Header.Indices) {
				return nil, total, fmt.Errorf("fafnir: SelfMerge stream entries overlap at %v", m.Header.Indices)
			}
			v := ws.cloneVec(value)
			if err := op.Apply(v, m.Value); err != nil {
				return nil, total, fmt.Errorf("fafnir: SelfMerge reduce: %w", err)
			}
			value = v
			covered = ws.union(covered, m.Header.Indices)
			total.Reduces++
		}
		raw = append(raw, Entry{
			Value:  value,
			Header: header.Header{Indices: covered, Queries: ws.qset1(ws.minus(full, covered))},
		})
		i = j
	}
	for i := range entries {
		if len(entries[i].Header.Queries) == 0 {
			raw = append(raw, entries[i])
		}
	}
	return ws.fold(raw, &total), total, nil
}

// ProcessPE runs the functional semantics of one PE over its two input
// buffers (Section IV-B/IV-C). For every entry and every remaining-index set
// in its Queries field, the compute units compare the set against the
// indices field of every entry of the opposite input:
//
//   - when opposite entries are covered by the set, the value is reduced
//     with the *maximal* covered entry — the opposite subtree's complete
//     partial reduction for that query — producing the unioned indices and
//     the remaining set minus the partner's indices;
//   - when no opposite entry is covered, the set is forwarded unchanged;
//   - entries whose remaining set is already empty (fully reduced queries
//     travelling to the root) always forward.
//
// The merge unit then removes duplicate outputs (the same reduction reached
// from both input directions) and folds outputs sharing an Indices set into
// one entry with concatenated Queries fields.
//
// Reducing with the maximal covered entry rather than every covered entry is
// what keeps each query's reduction a single chain through the tree: an
// inductive invariant of the tree is that each subtree emits exactly one
// entry covering all of a query's indices within that subtree, so the
// maximal match is that entry and smaller matches are its superseded
// sub-chains. Outputs are sorted by canonical header key, making the engine
// deterministic regardless of input order.
//
// This exported form allocates a private scratch whose memory is owned by the
// returned entries, so results live as long as the caller keeps them. The
// engine's hot path uses processPE with pooled per-worker scratches instead.
func ProcessPE(op tensor.ReduceOp, inA, inB []Entry) ([]Entry, PEStats, error) {
	return processPE(newWorkScratch(), op, inA, inB)
}

// SelfMerge reduces co-query entries that sit in the *same* input stream.
//
// Cross-input comparison alone cannot combine two indices of one query that
// live on the same rank (the paper's own Fig. 6 example needs this: indices
// 44 and 94 both reside in table 4). Physically the leaf PE receives a
// rank's entries serially and can compare each arriving entry against the
// ones already buffered; SelfMerge models the result of that serial pass.
//
// The implementation groups every (entry, remaining-set) pair by the full
// query it belongs to (the union of the entry's indices and the remaining
// set), reduces each group's members in canonical order, and re-emits one
// entry per group with the group's indices united and the remaining set
// shrunk accordingly. Entries within one group must have pairwise disjoint
// indices — true for leaf streams, where each planned access contributes one
// distinct index — and SelfMerge returns an error otherwise.
//
// The returned stats count the reduce actions and merge-unit folds performed.
// Like ProcessPE, this exported form allocates a private scratch owned by the
// results.
func SelfMerge(op tensor.ReduceOp, entries []Entry) ([]Entry, PEStats, error) {
	return selfMerge(newWorkScratch(), op, entries)
}
