package fafnir

import (
	"fmt"
	"slices"
	"sync"

	"fafnir/internal/header"
	"fafnir/internal/tensor"
)

// Entry is one value in flight through the tree: the (partially reduced)
// embedding data and its header. Values are treated as immutable once inside
// an entry; reduce actions clone before combining.
type Entry struct {
	Value  tensor.Vector
	Header header.Header
}

// Clone deep-copies the entry.
func (e Entry) Clone() Entry {
	return Entry{Value: e.Value.Clone(), Header: e.Header.Clone()}
}

// String renders the entry's header (values are elided).
func (e Entry) String() string {
	return fmt.Sprintf("Entry%s", e.Header.String())
}

// PEStats counts what one PE invocation did, for the timing model and for
// validating the paper's min(nm+n+m, B) output bound.
type PEStats struct {
	// InA and InB are the input occupancies.
	InA, InB int
	// Compares counts header comparisons performed (each query set of each
	// entry against each opposite entry's indices field).
	Compares int
	// Reduces counts reduce actions (a value pair combined).
	Reduces int
	// Forwards counts forward actions (a query set passed through).
	Forwards int
	// MergedDuplicates counts raw outputs eliminated or folded by the
	// merge unit.
	MergedDuplicates int
	// Outputs is the post-merge output occupancy.
	Outputs int
}

// Add accumulates o into s.
func (s *PEStats) Add(o PEStats) {
	s.InA += o.InA
	s.InB += o.InB
	s.Compares += o.Compares
	s.Reduces += o.Reduces
	s.Forwards += o.Forwards
	s.MergedDuplicates += o.MergedDuplicates
	s.Outputs += o.Outputs
}

// mergeSlot is one merge-unit output under construction: the entry and how
// many raw outputs were folded into it.
type mergeSlot struct {
	entry Entry
	raw   int
}

// groupSlot is one SelfMerge reduction group: the full query the group's
// members belong to and their positions in the input stream.
type groupSlot struct {
	full    header.IndexSet
	members []int
}

// mergeScratch is the pooled working state of ProcessPE's and SelfMerge's
// merge units. PEs evaluate concurrently under Config.Parallelism, so the
// scratch lives in a sync.Pool rather than on the engine; pooling keeps the
// steady-state hot path free of map and slice growth. Map lookups go through
// keybuf (m[string(buf)] lookups don't allocate); a key string is only built
// when a new slot is inserted.
type mergeScratch struct {
	byIdx  map[string]int // canonical indices key -> slots position
	slots  []mergeSlot
	keybuf []byte
	// SelfMerge group state.
	groups map[string]int // full-query key -> gslots position
	gslots []groupSlot
}

var mergePool = sync.Pool{New: func() any {
	return &mergeScratch{byIdx: make(map[string]int), groups: make(map[string]int)}
}}

// release clears the scratch and returns it to the pool. Entry and index-set
// references are dropped so pooled scratches do not pin vectors.
func (s *mergeScratch) release() {
	clear(s.byIdx)
	clear(s.groups)
	clear(s.slots)
	s.slots = s.slots[:0]
	for i := range s.gslots {
		s.gslots[i].full = nil
		s.gslots[i].members = s.gslots[i].members[:0]
	}
	s.gslots = s.gslots[:0]
	mergePool.Put(s)
}

// emit feeds one raw output into the merge unit: outputs sharing an Indices
// set fold into one slot with concatenated Queries fields.
func (s *mergeScratch) emit(e Entry) error {
	s.keybuf = e.Header.Indices.AppendKey(s.keybuf[:0])
	if i, ok := s.byIdx[string(s.keybuf)]; ok {
		merged, err := header.MergeQueries(s.slots[i].entry.Header, e.Header)
		if err != nil {
			return err
		}
		s.slots[i].entry.Header = merged
		s.slots[i].raw++
		return nil
	}
	s.byIdx[string(s.keybuf)] = len(s.slots)
	s.slots = append(s.slots, mergeSlot{entry: e, raw: 1})
	return nil
}

// finalize sorts the merge unit's outputs by canonical indices key — the step
// that makes PE evaluation deterministic regardless of input order — and
// returns them, charging the fold count to stats. Slots carry distinct
// Indices sets by construction, so Compare's Key order is a total order here.
func (s *mergeScratch) finalize(stats *PEStats) []Entry {
	slices.SortFunc(s.slots, func(a, b mergeSlot) int {
		return a.entry.Header.Indices.Compare(b.entry.Header.Indices)
	})
	out := make([]Entry, len(s.slots))
	for i, sl := range s.slots {
		stats.MergedDuplicates += sl.raw - 1
		out[i] = sl.entry
	}
	stats.Outputs = len(out)
	return out
}

// group returns the reduction group for the given full-query set, creating
// it (and reusing pooled member storage) on first sight. Returned pointers
// are invalidated by the next group call and by sortGroups.
func (s *mergeScratch) group(full header.IndexSet) *groupSlot {
	s.keybuf = full.AppendKey(s.keybuf[:0])
	if i, ok := s.groups[string(s.keybuf)]; ok {
		return &s.gslots[i]
	}
	s.groups[string(s.keybuf)] = len(s.gslots)
	if len(s.gslots) < cap(s.gslots) {
		s.gslots = s.gslots[:len(s.gslots)+1]
		g := &s.gslots[len(s.gslots)-1]
		g.full = full
		return g
	}
	s.gslots = append(s.gslots, groupSlot{full: full})
	return &s.gslots[len(s.gslots)-1]
}

// sortGroups orders the groups by full-query key so SelfMerge reduces them
// in canonical order. The groups map is stale afterwards; callers only
// iterate gslots from here on.
func (s *mergeScratch) sortGroups() {
	slices.SortFunc(s.gslots, func(a, b groupSlot) int { return a.full.Compare(b.full) })
}

// ProcessPE runs the functional semantics of one PE over its two input
// buffers (Section IV-B/IV-C). For every entry and every remaining-index set
// in its Queries field, the compute units compare the set against the
// indices field of every entry of the opposite input:
//
//   - when opposite entries are covered by the set, the value is reduced
//     with the *maximal* covered entry — the opposite subtree's complete
//     partial reduction for that query — producing the unioned indices and
//     the remaining set minus the partner's indices;
//   - when no opposite entry is covered, the set is forwarded unchanged;
//   - entries whose remaining set is already empty (fully reduced queries
//     travelling to the root) always forward.
//
// The merge unit then removes duplicate outputs (the same reduction reached
// from both input directions) and folds outputs sharing an Indices set into
// one entry with concatenated Queries fields.
//
// Reducing with the maximal covered entry rather than every covered entry is
// what keeps each query's reduction a single chain through the tree: an
// inductive invariant of the tree is that each subtree emits exactly one
// entry covering all of a query's indices within that subtree, so the
// maximal match is that entry and smaller matches are its superseded
// sub-chains. Outputs are sorted by canonical header key, making the engine
// deterministic regardless of input order.
func ProcessPE(op tensor.ReduceOp, inA, inB []Entry) ([]Entry, PEStats, error) {
	stats := PEStats{InA: len(inA), InB: len(inB)}
	sc := mergePool.Get().(*mergeScratch)
	defer sc.release()
	emit := sc.emit

	process := func(side, opp []Entry) error {
		for _, e := range side {
			if len(e.Header.Queries) == 0 {
				// Nothing owed by any query: pass through untouched.
				// Headers are immutable in flight, so the output may
				// share the input's sets.
				stats.Forwards++
				if err := emit(Entry{Value: e.Value, Header: e.Header}); err != nil {
					return err
				}
				continue
			}
			for _, qs := range e.Header.Queries {
				var best *Entry
				for oi := range opp {
					o := &opp[oi]
					stats.Compares++
					if o.Header.Indices.Empty() || !qs.ContainsAll(o.Header.Indices) {
						continue
					}
					if best == nil || o.Header.Indices.Len() > best.Header.Indices.Len() {
						best = o
					}
				}
				if best == nil {
					stats.Forwards++
					out := Entry{
						Value:  e.Value,
						Header: header.Header{Indices: e.Header.Indices, Queries: []header.IndexSet{qs}},
					}
					if err := emit(out); err != nil {
						return err
					}
					continue
				}
				v := e.Value.Clone()
				if err := op.Apply(v, best.Value); err != nil {
					return fmt.Errorf("fafnir: reduce value: %w", err)
				}
				stats.Reduces++
				out := Entry{
					Value: v,
					Header: header.Header{
						Indices: e.Header.Indices.Union(best.Header.Indices),
						Queries: []header.IndexSet{qs.Minus(best.Header.Indices)},
					},
				}
				if err := emit(out); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := process(inA, inB); err != nil {
		return nil, stats, err
	}
	if err := process(inB, inA); err != nil {
		return nil, stats, err
	}
	return sc.finalize(&stats), stats, nil
}

// SelfMerge reduces co-query entries that sit in the *same* input stream.
//
// Cross-input comparison alone cannot combine two indices of one query that
// live on the same rank (the paper's own Fig. 6 example needs this: indices
// 44 and 94 both reside in table 4). Physically the leaf PE receives a
// rank's entries serially and can compare each arriving entry against the
// ones already buffered; SelfMerge models the result of that serial pass.
//
// The implementation groups every (entry, remaining-set) pair by the full
// query it belongs to (the union of the entry's indices and the remaining
// set), reduces each group's members in canonical order, and re-emits one
// entry per group with the group's indices united and the remaining set
// shrunk accordingly. Entries within one group must have pairwise disjoint
// indices — true for leaf streams, where each planned access contributes one
// distinct index — and SelfMerge returns an error otherwise.
//
// The returned stats count the reduce actions and merge-unit folds performed.
func SelfMerge(op tensor.ReduceOp, entries []Entry) ([]Entry, PEStats, error) {
	var total PEStats
	sc := mergePool.Get().(*mergeScratch)
	defer sc.release()

	addMember := func(g *groupSlot, i int) {
		for _, m := range g.members {
			if m == i {
				return
			}
		}
		g.members = append(g.members, i)
	}

	var passthrough []Entry
	for i, e := range entries {
		if len(e.Header.Queries) == 0 {
			passthrough = append(passthrough, e)
			continue
		}
		for _, qs := range e.Header.Queries {
			full := e.Header.Indices.Union(qs)
			addMember(sc.group(full), i)
		}
	}
	sc.sortGroups()

	// Reduce each group: members combine in canonical (indices-key) order.
	emit := sc.emit

	for gi := range sc.gslots {
		g := &sc.gslots[gi]
		members := g.members
		slices.SortFunc(members, func(a, b int) int {
			return entries[a].Header.Indices.Compare(entries[b].Header.Indices)
		})
		first := entries[members[0]]
		covered := first.Header.Indices
		value := first.Value
		for _, mi := range members[1:] {
			m := entries[mi]
			if covered.ContainsAll(m.Header.Indices) {
				continue // duplicate read of the same data (non-dedup stream)
			}
			if covered.Intersects(m.Header.Indices) {
				return nil, total, fmt.Errorf("fafnir: SelfMerge stream entries overlap at %v", m.Header.Indices)
			}
			v := value.Clone()
			if err := op.Apply(v, m.Value); err != nil {
				return nil, total, fmt.Errorf("fafnir: SelfMerge reduce: %w", err)
			}
			value = v
			covered = covered.Union(m.Header.Indices)
			total.Reduces++
		}
		out := Entry{
			Value:  value,
			Header: header.Header{Indices: covered, Queries: []header.IndexSet{g.full.Minus(covered)}},
		}
		if err := emit(out); err != nil {
			return nil, total, err
		}
	}
	for _, e := range passthrough {
		if err := emit(e); err != nil {
			return nil, total, err
		}
	}
	return sc.finalize(&total), total, nil
}
