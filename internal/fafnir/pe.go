package fafnir

import (
	"fmt"
	"sort"

	"fafnir/internal/header"
	"fafnir/internal/tensor"
)

// Entry is one value in flight through the tree: the (partially reduced)
// embedding data and its header. Values are treated as immutable once inside
// an entry; reduce actions clone before combining.
type Entry struct {
	Value  tensor.Vector
	Header header.Header
}

// Clone deep-copies the entry.
func (e Entry) Clone() Entry {
	return Entry{Value: e.Value.Clone(), Header: e.Header.Clone()}
}

// String renders the entry's header (values are elided).
func (e Entry) String() string {
	return fmt.Sprintf("Entry%s", e.Header.String())
}

// PEStats counts what one PE invocation did, for the timing model and for
// validating the paper's min(nm+n+m, B) output bound.
type PEStats struct {
	// InA and InB are the input occupancies.
	InA, InB int
	// Compares counts header comparisons performed (each query set of each
	// entry against each opposite entry's indices field).
	Compares int
	// Reduces counts reduce actions (a value pair combined).
	Reduces int
	// Forwards counts forward actions (a query set passed through).
	Forwards int
	// MergedDuplicates counts raw outputs eliminated or folded by the
	// merge unit.
	MergedDuplicates int
	// Outputs is the post-merge output occupancy.
	Outputs int
}

// Add accumulates o into s.
func (s *PEStats) Add(o PEStats) {
	s.InA += o.InA
	s.InB += o.InB
	s.Compares += o.Compares
	s.Reduces += o.Reduces
	s.Forwards += o.Forwards
	s.MergedDuplicates += o.MergedDuplicates
	s.Outputs += o.Outputs
}

// ProcessPE runs the functional semantics of one PE over its two input
// buffers (Section IV-B/IV-C). For every entry and every remaining-index set
// in its Queries field, the compute units compare the set against the
// indices field of every entry of the opposite input:
//
//   - when opposite entries are covered by the set, the value is reduced
//     with the *maximal* covered entry — the opposite subtree's complete
//     partial reduction for that query — producing the unioned indices and
//     the remaining set minus the partner's indices;
//   - when no opposite entry is covered, the set is forwarded unchanged;
//   - entries whose remaining set is already empty (fully reduced queries
//     travelling to the root) always forward.
//
// The merge unit then removes duplicate outputs (the same reduction reached
// from both input directions) and folds outputs sharing an Indices set into
// one entry with concatenated Queries fields.
//
// Reducing with the maximal covered entry rather than every covered entry is
// what keeps each query's reduction a single chain through the tree: an
// inductive invariant of the tree is that each subtree emits exactly one
// entry covering all of a query's indices within that subtree, so the
// maximal match is that entry and smaller matches are its superseded
// sub-chains. Outputs are sorted by canonical header key, making the engine
// deterministic regardless of input order.
func ProcessPE(op tensor.ReduceOp, inA, inB []Entry) ([]Entry, PEStats, error) {
	stats := PEStats{InA: len(inA), InB: len(inB)}

	type slot struct {
		entry Entry
		raw   int // raw outputs folded into this slot
	}
	byIdx := make(map[string]*slot)
	var order []string

	emit := func(e Entry) error {
		key := e.Header.Indices.Key()
		if s, ok := byIdx[key]; ok {
			merged, err := header.MergeQueries(s.entry.Header, e.Header)
			if err != nil {
				return err
			}
			s.entry.Header = merged
			s.raw++
			return nil
		}
		byIdx[key] = &slot{entry: e, raw: 1}
		order = append(order, key)
		return nil
	}

	process := func(side, opp []Entry) error {
		for _, e := range side {
			if len(e.Header.Queries) == 0 {
				// Nothing owed by any query: pass through untouched.
				stats.Forwards++
				if err := emit(Entry{Value: e.Value, Header: e.Header.Clone()}); err != nil {
					return err
				}
				continue
			}
			for _, qs := range e.Header.Queries {
				var best *Entry
				for oi := range opp {
					o := &opp[oi]
					stats.Compares++
					if o.Header.Indices.Empty() || !qs.ContainsAll(o.Header.Indices) {
						continue
					}
					if best == nil || o.Header.Indices.Len() > best.Header.Indices.Len() {
						best = o
					}
				}
				if best == nil {
					stats.Forwards++
					out := Entry{
						Value:  e.Value,
						Header: header.Header{Indices: e.Header.Indices.Clone(), Queries: []header.IndexSet{qs.Clone()}},
					}
					if err := emit(out); err != nil {
						return err
					}
					continue
				}
				v := e.Value.Clone()
				if err := op.Apply(v, best.Value); err != nil {
					return fmt.Errorf("fafnir: reduce value: %w", err)
				}
				stats.Reduces++
				out := Entry{
					Value: v,
					Header: header.Header{
						Indices: e.Header.Indices.Union(best.Header.Indices),
						Queries: []header.IndexSet{qs.Minus(best.Header.Indices)},
					},
				}
				if err := emit(out); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := process(inA, inB); err != nil {
		return nil, stats, err
	}
	if err := process(inB, inA); err != nil {
		return nil, stats, err
	}

	sort.Strings(order)
	out := make([]Entry, 0, len(order))
	for _, key := range order {
		s := byIdx[key]
		stats.MergedDuplicates += s.raw - 1
		out = append(out, s.entry)
	}
	stats.Outputs = len(out)
	return out, stats, nil
}

// SelfMerge reduces co-query entries that sit in the *same* input stream.
//
// Cross-input comparison alone cannot combine two indices of one query that
// live on the same rank (the paper's own Fig. 6 example needs this: indices
// 44 and 94 both reside in table 4). Physically the leaf PE receives a
// rank's entries serially and can compare each arriving entry against the
// ones already buffered; SelfMerge models the result of that serial pass.
//
// The implementation groups every (entry, remaining-set) pair by the full
// query it belongs to (the union of the entry's indices and the remaining
// set), reduces each group's members in canonical order, and re-emits one
// entry per group with the group's indices united and the remaining set
// shrunk accordingly. Entries within one group must have pairwise disjoint
// indices — true for leaf streams, where each planned access contributes one
// distinct index — and SelfMerge returns an error otherwise.
//
// The returned stats count the reduce actions and merge-unit folds performed.
func SelfMerge(op tensor.ReduceOp, entries []Entry) ([]Entry, PEStats, error) {
	var total PEStats

	type group struct {
		full    header.IndexSet
		members []int // positions into entries
	}
	groups := make(map[string]*group)
	var groupOrder []string
	addMember := func(g *group, i int) {
		for _, m := range g.members {
			if m == i {
				return
			}
		}
		g.members = append(g.members, i)
	}

	var passthrough []Entry
	for i, e := range entries {
		if len(e.Header.Queries) == 0 {
			passthrough = append(passthrough, e)
			continue
		}
		for _, qs := range e.Header.Queries {
			full := e.Header.Indices.Union(qs)
			key := full.Key()
			g, ok := groups[key]
			if !ok {
				g = &group{full: full}
				groups[key] = g
				groupOrder = append(groupOrder, key)
			}
			addMember(g, i)
		}
	}
	sort.Strings(groupOrder)

	// Reduce each group: members combine in canonical (indices-key) order.
	type slot struct {
		entry Entry
		raw   int
	}
	byIdx := make(map[string]*slot)
	var outOrder []string
	emit := func(e Entry) error {
		key := e.Header.Indices.Key()
		if s, ok := byIdx[key]; ok {
			m, err := header.MergeQueries(s.entry.Header, e.Header)
			if err != nil {
				return err
			}
			s.entry.Header = m
			s.raw++
			return nil
		}
		byIdx[key] = &slot{entry: e, raw: 1}
		outOrder = append(outOrder, key)
		return nil
	}

	for _, key := range groupOrder {
		g := groups[key]
		members := append([]int(nil), g.members...)
		sort.Slice(members, func(a, b int) bool {
			return entries[members[a]].Header.Indices.Key() < entries[members[b]].Header.Indices.Key()
		})
		first := entries[members[0]]
		covered := first.Header.Indices.Clone()
		value := first.Value
		for _, mi := range members[1:] {
			m := entries[mi]
			if covered.ContainsAll(m.Header.Indices) {
				continue // duplicate read of the same data (non-dedup stream)
			}
			if covered.Intersects(m.Header.Indices) {
				return nil, total, fmt.Errorf("fafnir: SelfMerge stream entries overlap at %v", m.Header.Indices)
			}
			v := value.Clone()
			if err := op.Apply(v, m.Value); err != nil {
				return nil, total, fmt.Errorf("fafnir: SelfMerge reduce: %w", err)
			}
			value = v
			covered = covered.Union(m.Header.Indices)
			total.Reduces++
		}
		out := Entry{
			Value:  value,
			Header: header.Header{Indices: covered, Queries: []header.IndexSet{g.full.Minus(covered)}},
		}
		if err := emit(out); err != nil {
			return nil, total, err
		}
	}
	for _, e := range passthrough {
		if err := emit(e); err != nil {
			return nil, total, err
		}
	}

	sort.Strings(outOrder)
	final := make([]Entry, 0, len(outOrder))
	for _, key := range outOrder {
		s := byIdx[key]
		total.MergedDuplicates += s.raw - 1
		final = append(final, s.entry)
	}
	total.Outputs = len(final)
	return final, total, nil
}
