package header

import (
	"testing"
)

// FuzzCodec feeds raw bytes to Unpack under the paper's codec and checks the
// robustness contract of the wire format: decoding never panics, any header
// the decoder accepts fits the hardware payload budget (so Pack re-encodes
// it), and the re-encoding round-trips to an equal header. Run with
//
//	go test -fuzz=FuzzCodec ./internal/header
//
// The seed corpus covers the empty header, a leaf header, a reduced header,
// and a few corrupt encodings.
func FuzzCodec(f *testing.F) {
	c := PaperCodec()
	seed := []Header{
		{},
		NewLeaf(3, []IndexSet{NewIndexSet(1, 2)}),
		{Indices: NewIndexSet(0, 5, 9), Queries: []IndexSet{NewIndexSet(4), {}}},
	}
	for _, h := range seed {
		if data, err := c.Pack(h); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := c.Unpack(data)
		if err != nil {
			return // corrupt inputs must error, never panic — reaching here is the check
		}
		repacked, err := c.Pack(h)
		if err != nil {
			t.Fatalf("Unpack accepted %x as %v but Pack rejects it: %v", data, h, err)
		}
		h2, err := c.Unpack(repacked)
		if err != nil {
			t.Fatalf("re-encoding of %v does not decode: %v", h, err)
		}
		if !h2.Equal(h) {
			t.Fatalf("round trip changed header: %v -> %v", h, h2)
		}
	})
}
