package header

import (
	"fmt"
	"slices"
	"strings"
)

// Header is the metadata carried by every value flowing through the tree.
//
// Indices is the set of indices already reduced into the value. Queries lists,
// for every query that still needs this value, the indices of that query which
// have not yet been visited. At a leaf, Indices holds the single index the
// value was read from and Queries holds one remaining-set per query that uses
// the index; at the root, Queries is empty and Indices identifies the complete
// query the output belongs to.
type Header struct {
	Indices IndexSet
	Queries []IndexSet
}

// NewLeaf builds the header for a value freshly read from memory at index
// idx, needed by the given queries. Each entry of remaining must already
// exclude idx itself (the host-side batch rearrangement guarantees this; see
// package batch).
func NewLeaf(idx Index, remaining []IndexSet) Header {
	qs := make([]IndexSet, len(remaining))
	for i, r := range remaining {
		qs[i] = r.Clone()
	}
	return Header{Indices: NewIndexSet(idx), Queries: qs}
}

// Clone returns a deep copy of h.
func (h Header) Clone() Header {
	out := Header{Indices: h.Indices.Clone()}
	if h.Queries != nil {
		out.Queries = make([]IndexSet, len(h.Queries))
		for i, q := range h.Queries {
			out.Queries[i] = q.Clone()
		}
	}
	return out
}

// Complete reports whether the value has been fully reduced for at least one
// query: a header is complete when it reaches the root with an empty Queries
// field, or when one of its remaining-sets has been emptied along the way.
func (h Header) Complete() bool {
	if len(h.Queries) == 0 {
		return true
	}
	for _, q := range h.Queries {
		if q.Empty() {
			return true
		}
	}
	return false
}

// HasQuery reports whether any remaining-set equals q.
func (h Header) HasQuery(q IndexSet) bool {
	for _, r := range h.Queries {
		if r.Equal(q) {
			return true
		}
	}
	return false
}

// canonicalQueries sorts qs in place by Key order and deduplicates, so two
// headers that differ only in ordering compare equal. Key-order sorting via
// IndexSet.Compare keeps this allocation-free on the PE hot path.
func canonicalQueries(qs []IndexSet) []IndexSet {
	if len(qs) == 0 {
		return nil
	}
	slices.SortFunc(qs, IndexSet.Compare)
	out := qs[:1]
	for _, q := range qs[1:] {
		if !q.Equal(out[len(out)-1]) {
			out = append(out, q)
		}
	}
	return out
}

// Normalize sorts and deduplicates the Queries field in place and returns h.
// The merge unit relies on the canonical form for equality checks.
func (h *Header) Normalize() *Header {
	h.Queries = canonicalQueries(h.Queries)
	return h
}

// Key returns a canonical encoding of the whole header (indices + normalized
// queries). Two headers with equal Key are redundant outputs in the merge
// unit's first case ("the redundant outputs must be removed").
func (h Header) Key() string {
	qs := make([]IndexSet, len(h.Queries))
	copy(qs, h.Queries) // Key must not reorder the caller's header
	var b strings.Builder
	b.WriteString(h.Indices.Key())
	b.WriteByte('|')
	for _, q := range canonicalQueries(qs) {
		b.WriteString(q.Key())
		b.WriteByte(';')
	}
	return b.String()
}

// Equal reports whether h and o carry the same indices and the same
// (order-insensitive) queries.
func (h Header) Equal(o Header) bool {
	return h.Key() == o.Key()
}

// String renders the header like the paper's notation:
// "[indices:{50, 11} | queries:{94, 26}]".
func (h Header) String() string {
	var b strings.Builder
	b.WriteString("[indices:")
	b.WriteString(h.Indices.String())
	b.WriteString(" | queries:")
	for i, q := range h.Queries {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(q.String())
	}
	b.WriteByte(']')
	return b.String()
}

// CanReduceInto reports whether the value carrying h may be reduced into a
// value whose indices are other: some remaining-set of h must contain every
// index of other. It returns the position of the first such remaining-set,
// or -1. This is the PE's compare step: "If B[x].queries[j] contains all
// elements of A[i].indices, the compute unit performs a reduction."
func (h Header) CanReduceInto(other IndexSet) int {
	for j, q := range h.Queries {
		if q.ContainsAll(other) {
			return j
		}
	}
	return -1
}

// Reduce computes the header of the reduction of the two values carrying a
// and b: the Indices fields are unioned, and each remaining-set that covers
// the counterpart's indices is kept with those indices excluded. Remaining-
// sets that do not cover the counterpart belong to queries that need only one
// of the two operands; the PE serves those via separate forward actions, so
// they are dropped from the reduced header.
//
// Reduce returns ok=false when no remaining-set of either side covers the
// other side's indices, i.e. the reduction is not needed by any query.
func Reduce(a, b Header) (Header, bool) {
	union := a.Indices.Union(b.Indices)
	qs := make([]IndexSet, 0, len(a.Queries)+len(b.Queries))
	for _, q := range a.Queries {
		if q.ContainsAll(b.Indices) {
			qs = append(qs, q.Minus(b.Indices))
		}
	}
	for _, q := range b.Queries {
		if q.ContainsAll(a.Indices) {
			qs = append(qs, q.Minus(a.Indices))
		}
	}
	if len(qs) == 0 {
		return Header{}, false
	}
	h := Header{Indices: union, Queries: qs}
	h.Normalize()
	return h, true
}

// MergeQueries combines the headers of two outputs that carry the same
// Indices set (and therefore the same value): their Queries fields are
// concatenated and canonicalized. It is the merge unit's second case
// ("the outputs with the same data must be merged and the queries field in
// their headers must be merged").
func MergeQueries(a, b Header) (Header, error) {
	if !a.Indices.Equal(b.Indices) {
		return Header{}, fmt.Errorf("header: MergeQueries on distinct indices %v vs %v", a.Indices, b.Indices)
	}
	qs := make([]IndexSet, 0, len(a.Queries)+len(b.Queries))
	qs = append(qs, a.Queries...)
	qs = append(qs, b.Queries...)
	h := Header{Indices: a.Indices, Queries: qs}
	h.Normalize()
	return h, nil
}

// Bits returns the number of header bits for a configuration with idxBits-bit
// indices, q indices per query, and batch size b. It backs the Table I buffer
// sizing: the paper's 10-byte header corresponds to q=16, 5-bit indices
// (16 x 5 / 8 = 10 bytes).
func Bits(idxBits, q int) int {
	return idxBits * q
}
