package header

import "testing"

func BenchmarkContainsAll(b *testing.B) {
	s := NewIndexSet(1, 5, 9, 13, 17, 21, 25, 29)
	sub := NewIndexSet(5, 17, 29)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ContainsAll(sub)
	}
}

func BenchmarkReduce(b *testing.B) {
	a := Header{Indices: NewIndexSet(50), Queries: []IndexSet{NewIndexSet(83, 94), NewIndexSet(11, 94, 26)}}
	o := Header{Indices: NewIndexSet(11), Queries: []IndexSet{NewIndexSet(32, 83, 77), NewIndexSet(50, 94, 26)}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Reduce(a, o)
	}
}

func BenchmarkCodecPack(b *testing.B) {
	c := PaperCodec()
	h := Header{Indices: NewIndexSet(3, 17), Queries: []IndexSet{NewIndexSet(1, 2), NewIndexSet(30)}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Pack(h); err != nil {
			b.Fatal(err)
		}
	}
}
