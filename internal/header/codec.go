package header

import (
	"fmt"
)

// Codec packs headers into the paper's wire format. The published sizing
// (Section IV-B) allots q indices of IndexBits each — 16 x 5 bits = 10 bytes
// in the evaluated configuration — for the combined indices and queries
// fields of one in-flight entry. The layout is:
//
//	[ nIndices : CountBits ] [ index : IndexBits ] * nIndices
//	[ nSets    : CountBits ] ( [ setLen : CountBits ] [ index ] * setLen ) * nSets
//
// Pack fails when a header does not fit the budget, which is exactly the
// hardware condition that bounds buffer entries to min(nm+n+m, B).
type Codec struct {
	// IndexBits is the width of one index (5 bits for 32 tables).
	IndexBits int
	// QuerySize is q, the maximum indices per query.
	QuerySize int
	// CountBits is the width of the length fields.
	CountBits int
}

// PaperCodec returns the evaluated configuration: 5-bit indices, q=16,
// 5-bit counts.
func PaperCodec() Codec {
	return Codec{IndexBits: 5, QuerySize: 16, CountBits: 5}
}

// Validate reports a descriptive error for unusable codecs.
func (c Codec) Validate() error {
	switch {
	case c.IndexBits <= 0 || c.IndexBits > 32:
		return fmt.Errorf("header: IndexBits %d outside (0,32]", c.IndexBits)
	case c.QuerySize <= 0:
		return fmt.Errorf("header: QuerySize must be positive, got %d", c.QuerySize)
	case c.CountBits <= 0 || c.CountBits > 16:
		return fmt.Errorf("header: CountBits %d outside (0,16]", c.CountBits)
	}
	return nil
}

// PayloadBits is the value-field budget: q indices worth of bits, the
// paper's sizing for the combined indices+queries payload (the count fields
// are the control overhead on top).
func (c Codec) PayloadBits() int { return Bits(c.IndexBits, c.QuerySize) }

// maxIndex is the largest index representable at IndexBits.
func (c Codec) maxIndex() Index {
	if c.IndexBits >= 32 {
		return ^Index(0)
	}
	return Index(1)<<uint(c.IndexBits) - 1
}

func (c Codec) maxCount() int { return int(1)<<uint(c.CountBits) - 1 }

// bitWriter appends fixed-width fields to a byte slice, LSB first.
type bitWriter struct {
	buf []byte
	n   int // bits written
}

func (w *bitWriter) write(v uint32, bits int) {
	for b := 0; b < bits; b++ {
		if w.n%8 == 0 {
			w.buf = append(w.buf, 0)
		}
		if v&(1<<uint(b)) != 0 {
			w.buf[w.n/8] |= 1 << uint(w.n%8)
		}
		w.n++
	}
}

// bitReader consumes fixed-width fields, LSB first.
type bitReader struct {
	buf []byte
	n   int
}

func (r *bitReader) read(bits int) (uint32, error) {
	var v uint32
	for b := 0; b < bits; b++ {
		if r.n/8 >= len(r.buf) {
			return 0, fmt.Errorf("header: truncated encoding at bit %d", r.n)
		}
		if r.buf[r.n/8]&(1<<uint(r.n%8)) != 0 {
			v |= 1 << uint(b)
		}
		r.n++
	}
	return v, nil
}

// Pack encodes h. It returns an error when any index exceeds IndexBits, any
// field exceeds the count width, or the indices-payload bits exceed the
// paper's q x IndexBits budget.
func (c Codec) Pack(h Header) ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	payload := h.Indices.Len()
	for _, q := range h.Queries {
		payload += q.Len()
	}
	if payload*c.IndexBits > c.PayloadBits() {
		return nil, fmt.Errorf("header: %d indices exceed the %d-bit payload budget",
			payload, c.PayloadBits())
	}
	if h.Indices.Len() > c.maxCount() || len(h.Queries) > c.maxCount() {
		return nil, fmt.Errorf("header: field length exceeds %d-bit count", c.CountBits)
	}

	w := &bitWriter{}
	writeSet := func(s IndexSet) error {
		if s.Len() > c.maxCount() {
			return fmt.Errorf("header: set of %d exceeds count width", s.Len())
		}
		w.write(uint32(s.Len()), c.CountBits)
		for _, idx := range s {
			if idx > c.maxIndex() {
				return fmt.Errorf("header: index %d exceeds %d bits", idx, c.IndexBits)
			}
			w.write(uint32(idx), c.IndexBits)
		}
		return nil
	}
	if err := writeSet(h.Indices); err != nil {
		return nil, err
	}
	w.write(uint32(len(h.Queries)), c.CountBits)
	for _, q := range h.Queries {
		if err := writeSet(q); err != nil {
			return nil, err
		}
	}
	return w.buf, nil
}

// Unpack decodes an encoding produced by Pack. It enforces the same payload
// budget Pack does, so any header it accepts can be re-encoded: corrupt or
// adversarial inputs whose decoded field counts exceed the hardware budget
// are rejected rather than materialized.
func (c Codec) Unpack(data []byte) (Header, error) {
	if err := c.Validate(); err != nil {
		return Header{}, err
	}
	r := &bitReader{buf: data}
	payload := 0
	readSet := func() (IndexSet, error) {
		n, err := r.read(c.CountBits)
		if err != nil {
			return nil, err
		}
		payload += int(n)
		if payload*c.IndexBits > c.PayloadBits() {
			return nil, fmt.Errorf("header: %d decoded indices exceed the %d-bit payload budget",
				payload, c.PayloadBits())
		}
		out := make([]Index, n)
		for i := range out {
			v, err := r.read(c.IndexBits)
			if err != nil {
				return nil, err
			}
			out[i] = Index(v)
		}
		return NewIndexSet(out...), nil
	}
	h := Header{}
	var err error
	if h.Indices, err = readSet(); err != nil {
		return Header{}, err
	}
	nSets, err := r.read(c.CountBits)
	if err != nil {
		return Header{}, err
	}
	for i := uint32(0); i < nSets; i++ {
		q, err := readSet()
		if err != nil {
			return Header{}, err
		}
		h.Queries = append(h.Queries, q)
	}
	h.Normalize()
	return h, nil
}

// EncodedBytes reports the wire size of h under the codec (packing it).
func (c Codec) EncodedBytes(h Header) (int, error) {
	data, err := c.Pack(h)
	if err != nil {
		return 0, err
	}
	return len(data), nil
}
