package header

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIndexSetSortsAndDedups(t *testing.T) {
	s := NewIndexSet(5, 1, 3, 5, 1)
	want := IndexSet{1, 3, 5}
	if !s.Equal(want) {
		t.Fatalf("got %v, want %v", s, want)
	}
}

func TestNewIndexSetEmpty(t *testing.T) {
	s := NewIndexSet()
	if !s.Empty() || s.Len() != 0 {
		t.Fatalf("empty set misbehaves: %v", s)
	}
}

func TestContains(t *testing.T) {
	s := NewIndexSet(2, 4, 6)
	for _, x := range []Index{2, 4, 6} {
		if !s.Contains(x) {
			t.Errorf("Contains(%d) = false", x)
		}
	}
	for _, x := range []Index{0, 3, 7} {
		if s.Contains(x) {
			t.Errorf("Contains(%d) = true", x)
		}
	}
}

func TestContainsAll(t *testing.T) {
	s := NewIndexSet(1, 2, 5, 6)
	cases := []struct {
		sub  IndexSet
		want bool
	}{
		{NewIndexSet(), true},
		{NewIndexSet(1), true},
		{NewIndexSet(1, 6), true},
		{NewIndexSet(1, 2, 5, 6), true},
		{NewIndexSet(3), false},
		{NewIndexSet(1, 3), false},
		{NewIndexSet(1, 2, 5, 6, 7), false},
	}
	for _, c := range cases {
		if got := s.ContainsAll(c.sub); got != c.want {
			t.Errorf("ContainsAll(%v) = %v, want %v", c.sub, got, c.want)
		}
	}
}

func TestUnionMinus(t *testing.T) {
	a := NewIndexSet(1, 3, 5)
	b := NewIndexSet(2, 3, 6)
	if got := a.Union(b); !got.Equal(NewIndexSet(1, 2, 3, 5, 6)) {
		t.Fatalf("Union = %v", got)
	}
	if got := a.Minus(b); !got.Equal(NewIndexSet(1, 5)) {
		t.Fatalf("Minus = %v", got)
	}
	if got := a.Minus(a); !got.Empty() {
		t.Fatalf("a.Minus(a) = %v, want empty", got)
	}
	if got := a.Union(nil); !got.Equal(a) {
		t.Fatalf("Union(nil) = %v", got)
	}
	if got := IndexSet(nil).Union(b); !got.Equal(b) {
		t.Fatalf("nil.Union = %v", got)
	}
	if got := IndexSet(nil).Minus(b); !got.Empty() {
		t.Fatalf("nil.Minus = %v", got)
	}
}

func TestIntersects(t *testing.T) {
	a := NewIndexSet(1, 3)
	if !a.Intersects(NewIndexSet(3, 4)) {
		t.Fatal("expected intersection")
	}
	if a.Intersects(NewIndexSet(2, 4)) {
		t.Fatal("unexpected intersection")
	}
	if a.Intersects(nil) {
		t.Fatal("intersection with empty set")
	}
}

func TestKeyDistinguishesSets(t *testing.T) {
	a := NewIndexSet(1, 2)
	b := NewIndexSet(1, 3)
	c := NewIndexSet(1, 2)
	if a.Key() == b.Key() {
		t.Fatal("distinct sets share a key")
	}
	if a.Key() != c.Key() {
		t.Fatal("equal sets have different keys")
	}
	if IndexSet(nil).Key() != "" {
		t.Fatal("empty set key not empty")
	}
	// Keys must distinguish {0x0102} from {0x01, 0x02}: fixed-width encoding.
	d := NewIndexSet(0x0102)
	e := NewIndexSet(0x01, 0x02)
	if d.Key() == e.Key() {
		t.Fatal("key collision between {258} and {1,2}")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := NewIndexSet(1, 2)
	c := s.Clone()
	c[0] = 9
	if s[0] != 1 {
		t.Fatal("Clone aliased")
	}
	if IndexSet(nil).Clone() != nil {
		t.Fatal("nil clone not nil")
	}
}

func TestIndexSetString(t *testing.T) {
	if got := NewIndexSet(5, 1).String(); got != "{1, 5}" {
		t.Fatalf("String = %q", got)
	}
	if got := NewIndexSet().String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestNewLeaf(t *testing.T) {
	rem := []IndexSet{NewIndexSet(4, 7), NewIndexSet(2)}
	h := NewLeaf(9, rem)
	if !h.Indices.Equal(NewIndexSet(9)) {
		t.Fatalf("indices %v", h.Indices)
	}
	if len(h.Queries) != 2 {
		t.Fatalf("queries %v", h.Queries)
	}
	// Leaf must deep-copy the remaining sets.
	rem[0][0] = 99
	if h.Queries[0][0] == 99 {
		t.Fatal("NewLeaf aliased remaining sets")
	}
}

func TestHeaderComplete(t *testing.T) {
	h := Header{Indices: NewIndexSet(1)}
	if !h.Complete() {
		t.Fatal("empty-queries header not complete")
	}
	h.Queries = []IndexSet{NewIndexSet(2)}
	if h.Complete() {
		t.Fatal("pending header reported complete")
	}
	h.Queries = append(h.Queries, nil)
	if !h.Complete() {
		t.Fatal("header with an emptied query set not complete")
	}
}

func TestNormalizeDedupsQueries(t *testing.T) {
	h := Header{
		Indices: NewIndexSet(1),
		Queries: []IndexSet{NewIndexSet(3, 4), NewIndexSet(3, 4), NewIndexSet(2)},
	}
	h.Normalize()
	if len(h.Queries) != 2 {
		t.Fatalf("normalize kept %d sets: %v", len(h.Queries), h.Queries)
	}
}

func TestHeaderKeyOrderInsensitive(t *testing.T) {
	a := Header{Indices: NewIndexSet(1), Queries: []IndexSet{NewIndexSet(2), NewIndexSet(3)}}
	b := Header{Indices: NewIndexSet(1), Queries: []IndexSet{NewIndexSet(3), NewIndexSet(2)}}
	if !a.Equal(b) {
		t.Fatal("query order changed header identity")
	}
}

// TestReducePaperExample reproduces PE (0|1) from Fig. 6: A carries index 50
// with queries {83,94} and {11,94,26}; B carries index 11 with queries
// {32,83,77} and {50,94,26}. The reduce must produce indices {50,11} with
// queries {94,26}.
func TestReducePaperExample(t *testing.T) {
	a := Header{
		Indices: NewIndexSet(50),
		Queries: []IndexSet{NewIndexSet(83, 94), NewIndexSet(11, 94, 26)},
	}
	b := Header{
		Indices: NewIndexSet(11),
		Queries: []IndexSet{NewIndexSet(32, 83, 77), NewIndexSet(50, 94, 26)},
	}
	h, ok := Reduce(a, b)
	if !ok {
		t.Fatal("Reduce reported no matching query")
	}
	if !h.Indices.Equal(NewIndexSet(11, 50)) {
		t.Fatalf("reduced indices %v", h.Indices)
	}
	if len(h.Queries) != 1 || !h.Queries[0].Equal(NewIndexSet(26, 94)) {
		t.Fatalf("reduced queries %v", h.Queries)
	}
}

func TestReduceNoMatch(t *testing.T) {
	a := Header{Indices: NewIndexSet(1), Queries: []IndexSet{NewIndexSet(9)}}
	b := Header{Indices: NewIndexSet(2), Queries: []IndexSet{NewIndexSet(8)}}
	if _, ok := Reduce(a, b); ok {
		t.Fatal("Reduce succeeded with no covering query")
	}
}

func TestReduceToCompletion(t *testing.T) {
	a := Header{Indices: NewIndexSet(1), Queries: []IndexSet{NewIndexSet(2)}}
	b := Header{Indices: NewIndexSet(2), Queries: []IndexSet{NewIndexSet(1)}}
	h, ok := Reduce(a, b)
	if !ok {
		t.Fatal("Reduce failed")
	}
	if !h.Complete() {
		t.Fatalf("expected complete header, got %v", h)
	}
	if !h.Indices.Equal(NewIndexSet(1, 2)) {
		t.Fatalf("indices %v", h.Indices)
	}
}

func TestCanReduceInto(t *testing.T) {
	h := Header{
		Indices: NewIndexSet(7),
		Queries: []IndexSet{NewIndexSet(1, 2), NewIndexSet(3)},
	}
	if j := h.CanReduceInto(NewIndexSet(3)); j != 1 {
		t.Fatalf("CanReduceInto = %d, want 1", j)
	}
	if j := h.CanReduceInto(NewIndexSet(4)); j != -1 {
		t.Fatalf("CanReduceInto = %d, want -1", j)
	}
}

func TestMergeQueries(t *testing.T) {
	a := Header{Indices: NewIndexSet(32, 83), Queries: []IndexSet{NewIndexSet(11, 77)}}
	b := Header{Indices: NewIndexSet(32, 83), Queries: []IndexSet{NewIndexSet(26)}}
	m, err := MergeQueries(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Queries) != 2 {
		t.Fatalf("merged queries %v", m.Queries)
	}
	if !m.HasQuery(NewIndexSet(11, 77)) || !m.HasQuery(NewIndexSet(26)) {
		t.Fatalf("merged queries missing a set: %v", m.Queries)
	}
	if _, err := MergeQueries(a, Header{Indices: NewIndexSet(1)}); err == nil {
		t.Fatal("MergeQueries accepted distinct indices")
	}
}

func TestHeaderCloneDeep(t *testing.T) {
	h := Header{Indices: NewIndexSet(1), Queries: []IndexSet{NewIndexSet(2)}}
	c := h.Clone()
	c.Indices[0] = 5
	c.Queries[0][0] = 5
	if h.Indices[0] != 1 || h.Queries[0][0] != 2 {
		t.Fatal("Clone aliased")
	}
}

func TestHeaderString(t *testing.T) {
	h := Header{Indices: NewIndexSet(50, 11), Queries: []IndexSet{NewIndexSet(94, 26)}}
	got := h.String()
	want := "[indices:{11, 50} | queries:{26, 94}]"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestBits(t *testing.T) {
	// The paper's 10-byte header: q=16 indices at 5 bits each = 80 bits.
	if got := Bits(5, 16); got != 80 {
		t.Fatalf("Bits = %d, want 80", got)
	}
}

// Property: Union is commutative and contains both operands.
func TestQuickUnion(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a := fromUint16(xs)
		b := fromUint16(ys)
		u1 := a.Union(b)
		u2 := b.Union(a)
		if !u1.Equal(u2) {
			return false
		}
		return u1.ContainsAll(a) && u1.ContainsAll(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Minus removes exactly the members of the subtrahend.
func TestQuickMinus(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a := fromUint16(xs)
		b := fromUint16(ys)
		d := a.Minus(b)
		for _, x := range d {
			if !a.Contains(x) || b.Contains(x) {
				return false
			}
		}
		for _, x := range a {
			if !b.Contains(x) && !d.Contains(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

// Property: sorted invariant holds after every operation.
func TestQuickSortedInvariant(t *testing.T) {
	sorted := func(s IndexSet) bool {
		for i := 1; i < len(s); i++ {
			if s[i-1] >= s[i] {
				return false
			}
		}
		return true
	}
	f := func(xs, ys []uint16) bool {
		a := fromUint16(xs)
		b := fromUint16(ys)
		return sorted(a) && sorted(b) && sorted(a.Union(b)) && sorted(a.Minus(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Reduce (when it fires) always unions the indices fields and never
// leaves an index of either operand inside a surviving query set.
func TestQuickReduceExcludesOperands(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 300; trial++ {
		a := randomHeader(rng)
		b := randomHeader(rng)
		h, ok := Reduce(a, b)
		if !ok {
			continue
		}
		if !h.Indices.Equal(a.Indices.Union(b.Indices)) {
			t.Fatalf("indices not unioned: %v + %v -> %v", a, b, h)
		}
		for _, q := range h.Queries {
			if q.Intersects(a.Indices) || q.Intersects(b.Indices) {
				t.Fatalf("query set %v still references operand indices (%v, %v)", q, a.Indices, b.Indices)
			}
		}
	}
}

func fromUint16(xs []uint16) IndexSet {
	idx := make([]Index, len(xs))
	for i, x := range xs {
		idx[i] = Index(x % 64) // small domain so overlaps are common
	}
	return NewIndexSet(idx...)
}

func randomHeader(rng *rand.Rand) Header {
	n := 1 + rng.Intn(3)
	idx := make([]Index, n)
	for i := range idx {
		idx[i] = Index(rng.Intn(16))
	}
	h := Header{Indices: NewIndexSet(idx...)}
	for q := 0; q < rng.Intn(3)+1; q++ {
		m := rng.Intn(5)
		qs := make([]Index, m)
		for i := range qs {
			qs[i] = Index(rng.Intn(16))
		}
		// Well-formed headers never list their own indices as still needed.
		h.Queries = append(h.Queries, NewIndexSet(qs...).Minus(h.Indices))
	}
	return h
}
