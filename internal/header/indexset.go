// Package header implements the metadata that travels with every value
// through the Fafnir reduction tree.
//
// Each in-flight value carries a Header with two fields (Section IV-B of the
// paper):
//
//   - Indices: the set of embedding-vector indices whose values have already
//     been reduced into this value.
//   - Queries: one remaining-index set per query that still needs this value;
//     the indices listed have not been visited yet.
//
// A PE compares the Queries field of one input against the Indices field of
// the other to decide between a reduce and a forward, and the merge unit
// deduplicates identical outputs and concatenates the Queries fields of
// outputs that share the same Indices set. This package provides the index
// sets and those exact operations.
package header

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Index identifies one embedding vector (or one sparse-matrix row during
// SpMV). The paper's 32-table configuration uses 5-bit table identifiers; we
// allow the full 32-bit space so large tables and SpMV row spaces fit.
type Index = uint32

// IndexSet is a sorted, duplicate-free set of indices. The zero value is the
// empty set. All operations preserve the sorted invariant.
type IndexSet []Index

// NewIndexSet builds a set from the given indices, sorting and deduplicating.
func NewIndexSet(indices ...Index) IndexSet {
	if len(indices) == 0 {
		return nil
	}
	s := make(IndexSet, len(indices))
	copy(s, indices)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	// Dedup in place.
	out := s[:1]
	for _, x := range s[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// Len reports the number of indices in s.
func (s IndexSet) Len() int { return len(s) }

// Empty reports whether s has no indices.
func (s IndexSet) Empty() bool { return len(s) == 0 }

// Clone returns a deep copy of s.
func (s IndexSet) Clone() IndexSet {
	if s == nil {
		return nil
	}
	c := make(IndexSet, len(s))
	copy(c, s)
	return c
}

// Contains reports whether x is a member of s.
func (s IndexSet) Contains(x Index) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

// ContainsAll reports whether every index of sub is a member of s. It is the
// PE's reduce test: input B may be reduced into an entry whose queries set is
// s only if s contains all of B's indices.
func (s IndexSet) ContainsAll(sub IndexSet) bool {
	if len(sub) > len(s) {
		return false
	}
	// Both sets are sorted, so a subset's extrema must lie inside s's; this
	// rejects most non-subsets without walking either set.
	if len(sub) > 0 && (sub[0] < s[0] || sub[len(sub)-1] > s[len(s)-1]) {
		return false
	}
	i := 0
	for _, x := range sub {
		// Both sets are sorted; advance a shared cursor.
		for i < len(s) && s[i] < x {
			i++
		}
		if i >= len(s) || s[i] != x {
			return false
		}
		i++
	}
	return true
}

// Equal reports whether s and t contain exactly the same indices.
func (s IndexSet) Equal(t IndexSet) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Union returns the sorted union of s and t as a new set.
func (s IndexSet) Union(t IndexSet) IndexSet {
	if len(s) == 0 {
		return t.Clone()
	}
	if len(t) == 0 {
		return s.Clone()
	}
	out := make(IndexSet, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Minus returns s with every member of t removed, as a new set. It implements
// the header update "the queries field is created by excluding the indices of
// A and B" from Section IV-C.
func (s IndexSet) Minus(t IndexSet) IndexSet {
	if len(s) == 0 {
		return nil
	}
	if len(t) == 0 {
		return s.Clone()
	}
	out := make(IndexSet, 0, len(s))
	j := 0
	for _, x := range s {
		for j < len(t) && t[j] < x {
			j++
		}
		if j < len(t) && t[j] == x {
			continue
		}
		out = append(out, x)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Intersects reports whether s and t share at least one index.
func (s IndexSet) Intersects(t IndexSet) bool {
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// Key returns a canonical string encoding of s, usable as a map key for the
// merge unit's duplicate detection.
func (s IndexSet) Key() string {
	if len(s) == 0 {
		return ""
	}
	return string(s.AppendKey(make([]byte, 0, len(s)*4)))
}

// AppendKey appends the Key encoding of s to dst and returns the extended
// buffer. Hot paths reuse one scratch buffer across calls instead of
// allocating a string per Key.
func (s IndexSet) AppendKey(dst []byte) []byte {
	for _, x := range s {
		dst = append(dst, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return dst
}

// Compare orders two sets exactly as comparing their Key encodings would —
// element by element in little-endian byte order, shorter prefix first —
// without allocating. The merge unit sorts by this order, so it must stay
// byte-for-byte equivalent to Key for results to be reproducible across
// engine versions.
func (s IndexSet) Compare(t IndexSet) int {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	for i := 0; i < n; i++ {
		if s[i] != t[i] {
			if bits.ReverseBytes32(s[i]) < bits.ReverseBytes32(t[i]) {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(s) < len(t):
		return -1
	case len(s) > len(t):
		return 1
	}
	return 0
}

// String renders the set like "{1, 2, 5}".
func (s IndexSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, x := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", x)
	}
	b.WriteByte('}')
	return b.String()
}
