package header

import (
	"math/rand"
	"testing"
)

func TestCodecValidate(t *testing.T) {
	bad := []Codec{
		{IndexBits: 0, QuerySize: 16, CountBits: 5},
		{IndexBits: 33, QuerySize: 16, CountBits: 5},
		{IndexBits: 5, QuerySize: 0, CountBits: 5},
		{IndexBits: 5, QuerySize: 16, CountBits: 0},
		{IndexBits: 5, QuerySize: 16, CountBits: 17},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad codec %d accepted", i)
		}
	}
	if err := PaperCodec().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperCodecBudget(t *testing.T) {
	// 16 x 5 bits = 80 bits = the 10-byte header of Section IV-B.
	if got := PaperCodec().PayloadBits(); got != 80 {
		t.Fatalf("PayloadBits = %d, want 80", got)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	c := PaperCodec()
	h := Header{
		Indices: NewIndexSet(3, 17),
		Queries: []IndexSet{NewIndexSet(1, 2), NewIndexSet(30), nil},
	}
	data, err := c.Pack(h)
	if err != nil {
		t.Fatal(err)
	}
	back, err := c.Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(h) {
		t.Fatalf("round trip: %v -> %v", h, back)
	}
}

func TestPackFig6HeaderFits(t *testing.T) {
	// The busiest Fig. 6 leaf header: index 83 with three remaining sets,
	// 11 payload indices total — inside the 16-slot budget. (The Fig. 6
	// indices exceed 5 bits, so use an 8-bit variant of the codec.)
	c := Codec{IndexBits: 8, QuerySize: 16, CountBits: 5}
	h := Header{
		Indices: NewIndexSet(83),
		Queries: []IndexSet{
			NewIndexSet(11, 32, 44, 77),
			NewIndexSet(26, 32, 50),
			NewIndexSet(77),
		},
	}
	n, err := c.EncodedBytes(h)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || n > 16 {
		t.Fatalf("encoded bytes = %d", n)
	}
	back, err := c.Unpack(mustPack(t, c, h))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(h) {
		t.Fatal("fig6 header round trip failed")
	}
}

func mustPack(t *testing.T, c Codec, h Header) []byte {
	t.Helper()
	data, err := c.Pack(h)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPackRejectsOversizedIndex(t *testing.T) {
	c := PaperCodec() // 5-bit indices: max 31
	h := Header{Indices: NewIndexSet(32), Queries: []IndexSet{nil}}
	if _, err := c.Pack(h); err == nil {
		t.Fatal("index 32 accepted at 5 bits")
	}
}

func TestPackRejectsOverBudget(t *testing.T) {
	c := PaperCodec() // budget: 16 payload indices
	idx := make([]Index, 17)
	for i := range idx {
		idx[i] = Index(i)
	}
	h := Header{Indices: NewIndexSet(idx...), Queries: []IndexSet{nil}}
	if _, err := c.Pack(h); err == nil {
		t.Fatal("17 payload indices accepted in a 16-slot budget")
	}
}

func TestUnpackRejectsTruncated(t *testing.T) {
	c := PaperCodec()
	data := mustPack(t, c, Header{Indices: NewIndexSet(1, 2), Queries: []IndexSet{NewIndexSet(3)}})
	if _, err := c.Unpack(data[:1]); err == nil {
		t.Fatal("truncated encoding accepted")
	}
}

// Property: every well-formed header within the budget round-trips exactly.
func TestQuickCodecRoundTrip(t *testing.T) {
	c := PaperCodec()
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		h := Header{}
		budget := 16
		nIdx := 1 + rng.Intn(4)
		idx := make([]Index, nIdx)
		for i := range idx {
			idx[i] = Index(rng.Intn(32))
		}
		h.Indices = NewIndexSet(idx...)
		budget -= h.Indices.Len()
		for q := 0; q < rng.Intn(3) && budget > 0; q++ {
			m := rng.Intn(budget + 1)
			qs := make([]Index, m)
			for i := range qs {
				qs[i] = Index(rng.Intn(32))
			}
			set := NewIndexSet(qs...).Minus(h.Indices)
			h.Queries = append(h.Queries, set)
			budget -= set.Len()
		}
		h.Normalize()
		data, err := c.Pack(h)
		if err != nil {
			t.Fatalf("trial %d: %v (header %v)", trial, err, h)
		}
		back, err := c.Unpack(data)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !back.Equal(h) {
			t.Fatalf("trial %d: %v -> %v", trial, h, back)
		}
	}
}
