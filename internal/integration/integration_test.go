// Package integration holds cross-module differential tests: every lookup
// engine must produce identical functional results on the same workloads,
// and the timing relationships the paper's argument depends on must hold
// across the full stack (generators -> batch compiler -> engines -> DRAM).
package integration

import (
	"math/rand"
	"testing"

	"fafnir/internal/cpu"
	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	core "fafnir/internal/fafnir"
	"fafnir/internal/memmap"
	"fafnir/internal/recnmp"
	"fafnir/internal/tensor"
	"fafnir/internal/tensordimm"
)

type fixture struct {
	mcfg   dram.Config
	layout *memmap.Layout
	store  *embedding.Store
	faf    *core.Engine
	rec    *recnmp.Engine
	tdm    *tensordimm.Engine
	base   *cpu.Engine
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	mcfg := dram.DDR4()
	layout := memmap.Uniform(mcfg, 512, 32, 4096)
	f := &fixture{
		mcfg:   mcfg,
		layout: layout,
		store:  embedding.MustStore(layout.TotalRows(), 128, 11),
	}
	var err error
	if f.faf, err = core.NewEngine(core.Default()); err != nil {
		t.Fatal(err)
	}
	if f.rec, err = recnmp.NewEngine(recnmp.Default()); err != nil {
		t.Fatal(err)
	}
	if f.tdm, err = tensordimm.NewEngine(tensordimm.Default()); err != nil {
		t.Fatal(err)
	}
	if f.base, err = cpu.NewEngine(cpu.Default()); err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *fixture) batch(t *testing.T, n, q int, seed int64, dist embedding.Distribution) embedding.Batch {
	t.Helper()
	cfg := embedding.GeneratorConfig{
		NumQueries: n, QuerySize: q, Rows: f.layout.TotalRows(), Seed: seed, Dist: dist,
	}
	if dist == embedding.Zipf {
		cfg.ZipfS = 1.3
	}
	gen, err := embedding.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return gen.Batch(tensor.OpSum)
}

// TestAllEnginesAgreeFunctionally is the differential core: four independent
// engine implementations, one golden answer.
func TestAllEnginesAgreeFunctionally(t *testing.T) {
	f := newFixture(t)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(24)
		q := 1 + rng.Intn(16)
		dist := embedding.Distribution(rng.Intn(2))
		b := f.batch(t, n, q, int64(trial), dist)
		golden := b.MustGolden(f.store)

		fres, err := f.faf.TimedLookup(f.store, f.layout, dram.MustSystem(f.mcfg), b, true)
		if err != nil {
			t.Fatalf("trial %d fafnir: %v", trial, err)
		}
		ires, err := f.faf.InteractiveLookup(f.store, f.layout, dram.MustSystem(f.mcfg), b)
		if err != nil {
			t.Fatalf("trial %d interactive: %v", trial, err)
		}
		rres, err := f.rec.TimedLookup(f.store, f.layout, dram.MustSystem(f.mcfg), b)
		if err != nil {
			t.Fatalf("trial %d recnmp: %v", trial, err)
		}
		tres, err := f.tdm.TimedLookup(f.store, dram.MustSystem(f.mcfg), b)
		if err != nil {
			t.Fatalf("trial %d tensordimm: %v", trial, err)
		}
		bres, err := f.base.TimedLookup(f.store, f.layout, dram.MustSystem(f.mcfg), b)
		if err != nil {
			t.Fatalf("trial %d baseline: %v", trial, err)
		}

		for name, outs := range map[string][]tensor.Vector{
			"fafnir": fres.Outputs, "interactive": ires.Outputs,
			"recnmp": rres.Outputs, "tensordimm": tres.Outputs, "baseline": bres.Outputs,
		} {
			for qi := range golden {
				if !outs[qi].ApproxEqual(golden[qi], 1e-3) {
					t.Fatalf("trial %d: %s query %d disagrees with golden", trial, name, qi)
				}
			}
		}
	}
}

// TestPaperOrderingHolds asserts the headline timing relations on a
// realistic batch: Fafnir fastest, baseline slowest of the row-major
// designs, TensorDIMM slowest overall; Fafnir's dedup never reads more than
// the raw access count; channel traffic ordering matches the data-movement
// argument.
func TestPaperOrderingHolds(t *testing.T) {
	f := newFixture(t)
	b := f.batch(t, 32, 16, 5, embedding.Zipf)

	fres, err := f.faf.TimedLookup(f.store, f.layout, dram.MustSystem(f.mcfg), b, true)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := f.rec.TimedLookup(f.store, f.layout, dram.MustSystem(f.mcfg), b)
	if err != nil {
		t.Fatal(err)
	}
	tres, err := f.tdm.TimedLookup(f.store, dram.MustSystem(f.mcfg), b)
	if err != nil {
		t.Fatal(err)
	}
	bres, err := f.base.TimedLookup(f.store, f.layout, dram.MustSystem(f.mcfg), b)
	if err != nil {
		t.Fatal(err)
	}

	if !(fres.TotalCycles < rres.TotalCycles && rres.TotalCycles < tres.TotalCycles) {
		t.Fatalf("latency ordering broken: fafnir %d, recnmp %d, tensordimm %d",
			fres.TotalCycles, rres.TotalCycles, tres.TotalCycles)
	}
	if fres.TotalCycles >= bres.TotalCycles {
		t.Fatalf("fafnir %d not below baseline %d", fres.TotalCycles, bres.TotalCycles)
	}
	if fres.MemoryReads > b.TotalAccesses() {
		t.Fatalf("dedup read more (%d) than raw accesses (%d)", fres.MemoryReads, b.TotalAccesses())
	}
	// Data movement: baseline ships everything, RecNMP part, Fafnir/
	// TensorDIMM only outputs.
	if !(tres.BytesToHost <= rres.BytesToHost && rres.BytesToHost <= bres.BytesToHost) {
		t.Fatalf("traffic ordering broken: tdm %d, rec %d, base %d",
			tres.BytesToHost, rres.BytesToHost, bres.BytesToHost)
	}
}

// TestSharedMemoryStateComposes runs two engines back to back on one DRAM
// system (a co-located deployment): both must stay functionally correct and
// the second must observe the first's bus occupancy.
func TestSharedMemoryStateComposes(t *testing.T) {
	f := newFixture(t)
	mem := dram.MustSystem(f.mcfg)
	b := f.batch(t, 8, 8, 9, embedding.Uniform)
	golden := b.MustGolden(f.store)

	first, err := f.faf.TimedLookup(f.store, f.layout, mem, b, true)
	if err != nil {
		t.Fatal(err)
	}
	second, err := f.faf.TimedLookup(f.store, f.layout, mem, b, true)
	if err != nil {
		t.Fatal(err)
	}
	if second.TotalCycles <= first.TotalCycles {
		t.Fatalf("second run (%d) did not queue behind the first (%d)",
			second.TotalCycles, first.TotalCycles)
	}
	for qi := range golden {
		if !second.Outputs[qi].ApproxEqual(golden[qi], 1e-3) {
			t.Fatalf("query %d wrong under shared memory state", qi)
		}
	}
}

// TestDeterminismAcrossRuns re-runs the full stack and compares cycle-exact.
func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (uint64, tensor.Vector) {
		f := newFixture(t)
		b := f.batch(t, 16, 16, 3, embedding.Zipf)
		res, err := f.faf.TimedLookup(f.store, f.layout, dram.MustSystem(f.mcfg), b, true)
		if err != nil {
			t.Fatal(err)
		}
		return uint64(res.TotalCycles), res.Outputs[0]
	}
	c1, v1 := run()
	c2, v2 := run()
	if c1 != c2 {
		t.Fatalf("nondeterministic cycles: %d vs %d", c1, c2)
	}
	if !v1.Equal(v2) {
		t.Fatal("nondeterministic outputs")
	}
}

// TestAllOpsAcrossEngines sweeps the pooling operations: every engine must
// match the golden reference for sum, min, max, and mean.
func TestAllOpsAcrossEngines(t *testing.T) {
	f := newFixture(t)
	for _, op := range []tensor.ReduceOp{tensor.OpSum, tensor.OpMin, tensor.OpMax, tensor.OpMean} {
		b := f.batch(t, 8, 8, 21, embedding.Uniform)
		b.Op = op
		golden := b.MustGolden(f.store)

		fres, err := f.faf.TimedLookup(f.store, f.layout, dram.MustSystem(f.mcfg), b, true)
		if err != nil {
			t.Fatalf("op %v fafnir: %v", op, err)
		}
		rres, err := f.rec.TimedLookup(f.store, f.layout, dram.MustSystem(f.mcfg), b)
		if err != nil {
			t.Fatalf("op %v recnmp: %v", op, err)
		}
		for qi := range golden {
			if !fres.Outputs[qi].ApproxEqual(golden[qi], 1e-3) {
				t.Fatalf("op %v: fafnir query %d mismatch", op, qi)
			}
			if !rres.Outputs[qi].ApproxEqual(golden[qi], 1e-3) {
				t.Fatalf("op %v: recnmp query %d mismatch", op, qi)
			}
		}
	}
}

// TestSoakLargeBatch pushes a production-sized software batch through the
// full stack (guarded by -short).
func TestSoakLargeBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	f := newFixture(t)
	b := f.batch(t, 1024, 16, 31, embedding.Zipf)
	golden := b.MustGolden(f.store)
	res, err := f.faf.TimedLookup(f.store, f.layout, dram.MustSystem(f.mcfg), b, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.HWBatches != 32 {
		t.Fatalf("HWBatches = %d, want 32", res.HWBatches)
	}
	for qi := range golden {
		if !res.Outputs[qi].ApproxEqual(golden[qi], 1e-3) {
			t.Fatalf("query %d mismatch in soak run", qi)
		}
	}
	if err := core.CheckOccupancyBound(&res.Result, 32); err != nil {
		t.Fatal(err)
	}
}
