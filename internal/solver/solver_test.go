package solver

import (
	"math"
	"testing"

	"fafnir/internal/dram"
	"fafnir/internal/sim"
	"fafnir/internal/sparse"
	"fafnir/internal/spmv"
	"fafnir/internal/tensor"
)

// fafnirSpMV returns an executor backed by the Fafnir tree simulator.
func fafnirSpMV(t *testing.T) SpMV {
	t.Helper()
	cfg := spmv.Default()
	cfg.Tree.NumRanks = 8
	cfg.VectorSize = 512
	eng, err := spmv.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return func(m *sparse.LIL, x tensor.Vector) (tensor.Vector, sim.Cycle, error) {
		res, err := eng.Multiply(m, x, dram.MustSystem(dram.DDR4()))
		if err != nil {
			return nil, 0, err
		}
		return res.Y, res.TotalCycles, nil
	}
}

func spdSystem(t *testing.T, n int, seed int64) (*sparse.LIL, tensor.Vector, tensor.Vector) {
	t.Helper()
	a := sparse.SymmetricDiagDominant(n, 3, seed)
	// Construct b = A * xTrue so the solution is known.
	xTrue := sparse.DenseVector(n, seed+5)
	b, err := a.MulVec(xTrue)
	if err != nil {
		t.Fatal(err)
	}
	return a, b, xTrue
}

func maxAbsDiff(a, b tensor.Vector) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i] - b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestSPDGeneratorProperties(t *testing.T) {
	a := sparse.SymmetricDiagDominant(64, 3, 1)
	// Symmetry.
	get := func(r, c int) float32 {
		for i, cc := range a.ColIdx[r] {
			if int(cc) == c {
				return a.Vals[r][i]
			}
		}
		return 0
	}
	for r := 0; r < 64; r++ {
		for i, c := range a.ColIdx[r] {
			if get(int(c), r) != a.Vals[r][i] {
				t.Fatalf("asymmetric at (%d,%d)", r, c)
			}
		}
	}
	// Strict diagonal dominance.
	diag := a.Diagonal()
	for r := 0; r < 64; r++ {
		var off float64
		for i, c := range a.ColIdx[r] {
			if int(c) != r {
				off += math.Abs(float64(a.Vals[r][i]))
			}
		}
		if float64(diag[r]) <= off {
			t.Fatalf("row %d not strictly dominant: diag %v, off %v", r, diag[r], off)
		}
	}
}

func TestDiagonalHelpers(t *testing.T) {
	a := sparse.SymmetricDiagDominant(16, 2, 2)
	d := a.Diagonal()
	r := a.WithoutDiagonal()
	if r.NNZ() != a.NNZ()-16 {
		t.Fatalf("WithoutDiagonal NNZ %d, want %d", r.NNZ(), a.NNZ()-16)
	}
	for i, v := range d {
		if v == 0 {
			t.Fatalf("zero diagonal at %d", i)
		}
	}
	for row := range r.ColIdx {
		for _, c := range r.ColIdx[row] {
			if int(c) == row {
				t.Fatalf("diagonal entry survived at %d", row)
			}
		}
	}
}

func TestJacobiReference(t *testing.T) {
	a, b, xTrue := spdSystem(t, 128, 3)
	res, err := Jacobi(a, b, Reference(), Options{MaxIterations: 500, Tolerance: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("Jacobi did not converge: residual %v after %d iterations", res.Residual, res.Iterations)
	}
	if d := maxAbsDiff(res.X, xTrue); d > 0.01 {
		t.Fatalf("solution off by %v", d)
	}
	if res.SpMVCycles != 0 {
		t.Fatal("reference executor charged cycles")
	}
}

func TestJacobiOnFafnir(t *testing.T) {
	a, b, xTrue := spdSystem(t, 128, 4)
	res, err := Jacobi(a, b, fafnirSpMV(t), Options{MaxIterations: 500, Tolerance: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("Jacobi-on-Fafnir did not converge: residual %v", res.Residual)
	}
	if d := maxAbsDiff(res.X, xTrue); d > 0.01 {
		t.Fatalf("solution off by %v", d)
	}
	if res.SpMVCycles == 0 || res.SpMVCount != res.Iterations {
		t.Fatalf("accelerator accounting wrong: %d cycles over %d products for %d iterations",
			res.SpMVCycles, res.SpMVCount, res.Iterations)
	}
}

func TestCGReference(t *testing.T) {
	a, b, xTrue := spdSystem(t, 128, 5)
	res, err := CG(a, b, Reference(), Options{MaxIterations: 300, Tolerance: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge: residual %v after %d iterations", res.Residual, res.Iterations)
	}
	if d := maxAbsDiff(res.X, xTrue); d > 0.01 {
		t.Fatalf("solution off by %v", d)
	}
}

func TestCGOnFafnir(t *testing.T) {
	a, b, xTrue := spdSystem(t, 128, 6)
	res, err := CG(a, b, fafnirSpMV(t), Options{MaxIterations: 300, Tolerance: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG-on-Fafnir did not converge: residual %v", res.Residual)
	}
	if d := maxAbsDiff(res.X, xTrue); d > 0.01 {
		t.Fatalf("solution off by %v", d)
	}
	if res.SpMVCycles == 0 {
		t.Fatal("no accelerator cycles recorded")
	}
}

func TestCGConvergesFasterThanJacobi(t *testing.T) {
	a, b, _ := spdSystem(t, 256, 7)
	jac, err := Jacobi(a, b, Reference(), Options{MaxIterations: 1000, Tolerance: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	cg, err := CG(a, b, Reference(), Options{MaxIterations: 1000, Tolerance: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if !jac.Converged || !cg.Converged {
		t.Fatalf("convergence failed: jacobi %v, cg %v", jac.Converged, cg.Converged)
	}
	if cg.Iterations >= jac.Iterations {
		t.Fatalf("CG (%d iters) not faster than Jacobi (%d)", cg.Iterations, jac.Iterations)
	}
}

func TestSolverErrors(t *testing.T) {
	rect := sparse.RandomUniform(4, 5, 0.5, 1)
	if _, err := Jacobi(rect, tensor.New(4), Reference(), Options{}); err == nil {
		t.Fatal("rectangular matrix accepted by Jacobi")
	}
	if _, err := CG(rect, tensor.New(4), Reference(), Options{}); err == nil {
		t.Fatal("rectangular matrix accepted by CG")
	}
	sq := sparse.SymmetricDiagDominant(4, 1, 1)
	if _, err := Jacobi(sq, tensor.New(3), Reference(), Options{}); err == nil {
		t.Fatal("wrong rhs length accepted by Jacobi")
	}
	if _, err := CG(sq, tensor.New(3), Reference(), Options{}); err == nil {
		t.Fatal("wrong rhs length accepted by CG")
	}
	// Zero diagonal rejected by Jacobi.
	zero := sparse.NewLIL(2, 2)
	zero.ColIdx[0] = []int32{1}
	zero.Vals[0] = []float32{1}
	zero.ColIdx[1] = []int32{0}
	zero.Vals[1] = []float32{1}
	if _, err := Jacobi(zero, tensor.New(2), Reference(), Options{}); err == nil {
		t.Fatal("zero diagonal accepted")
	}
}

func TestJacobiNonConvergenceReported(t *testing.T) {
	a, b, _ := spdSystem(t, 128, 8)
	res, err := Jacobi(a, b, Reference(), Options{MaxIterations: 1, Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("one iteration reported as converged at 1e-9")
	}
	if res.Iterations != 1 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}
