// Package solver implements iterative linear solvers — Jacobi and conjugate
// gradient — whose sparse matrix-vector products execute on an accelerator.
// The paper names "numeric algebra such as matrix inversion and
// differential-equation solvers" as sparse-gathering domains Fafnir serves
// without hardware changes; this package is that application layer: every
// SpMV goes through a pluggable executor (the Fafnir tree, the Two-Step
// baseline, or the plain software reference), and the solver accounts for
// the accelerator cycles it consumed.
package solver

import (
	"fmt"
	"math"

	"fafnir/internal/sim"
	"fafnir/internal/sparse"
	"fafnir/internal/tensor"
)

// SpMV executes one sparse matrix-vector product and reports the cycles it
// took on the executing hardware (zero for pure software).
type SpMV func(m *sparse.LIL, x tensor.Vector) (tensor.Vector, sim.Cycle, error)

// Reference returns an SpMV executor backed by the software reference
// implementation (no simulated hardware, zero cycles).
func Reference() SpMV {
	return func(m *sparse.LIL, x tensor.Vector) (tensor.Vector, sim.Cycle, error) {
		y, err := m.MulVec(x)
		return y, 0, err
	}
}

// Result is the outcome of a solve.
type Result struct {
	// X is the solution estimate.
	X tensor.Vector
	// Iterations is the number of iterations performed.
	Iterations int
	// Residual is the final ||Ax-b||_2 (computed in software).
	Residual float64
	// Converged reports whether the tolerance was met within the budget.
	Converged bool
	// SpMVCycles accumulates the accelerator cycles across all products.
	SpMVCycles sim.Cycle
	// SpMVCount is the number of products issued.
	SpMVCount int
}

// Options bound a solve.
type Options struct {
	// MaxIterations caps the iteration count (default 200).
	MaxIterations int
	// Tolerance is the target ||Ax-b||_2 (default 1e-3 * sqrt(n)).
	Tolerance float64
}

func (o *Options) fill(n int) {
	if o.MaxIterations == 0 {
		o.MaxIterations = 200
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-3 * math.Sqrt(float64(n))
	}
}

// residual computes ||A x - b||_2 in software.
func residual(a *sparse.LIL, x, b tensor.Vector) (float64, error) {
	ax, err := a.MulVec(x)
	if err != nil {
		return 0, err
	}
	var s float64
	for i := range ax {
		d := float64(ax[i] - b[i])
		s += d * d
	}
	return math.Sqrt(s), nil
}

// Jacobi solves A x = b for diagonally dominant A using Jacobi iteration:
// x' = D^-1 (b - R x), with the R x product running on the accelerator.
func Jacobi(a *sparse.LIL, b tensor.Vector, mul SpMV, opts Options) (*Result, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("solver: Jacobi needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("solver: rhs of %d elements against %d rows", len(b), a.Rows)
	}
	opts.fill(a.Rows)

	diag := a.Diagonal()
	for i, d := range diag {
		if d == 0 {
			return nil, fmt.Errorf("solver: zero diagonal at row %d", i)
		}
	}
	r := a.WithoutDiagonal()

	res := &Result{X: tensor.New(a.Rows)}
	for res.Iterations = 0; res.Iterations < opts.MaxIterations; res.Iterations++ {
		rx, cyc, err := mul(r, res.X)
		if err != nil {
			return nil, err
		}
		res.SpMVCycles += cyc
		res.SpMVCount++
		next := tensor.New(a.Rows)
		for i := range next {
			next[i] = (b[i] - rx[i]) / diag[i]
		}
		res.X = next

		rn, err := residual(a, res.X, b)
		if err != nil {
			return nil, err
		}
		res.Residual = rn
		if rn <= opts.Tolerance {
			res.Converged = true
			res.Iterations++
			break
		}
	}
	return res, nil
}

// CG solves A x = b for symmetric positive-definite A with the conjugate
// gradient method; the A p products run on the accelerator, the dot
// products and vector updates on the host (they are dense and tiny).
func CG(a *sparse.LIL, b tensor.Vector, mul SpMV, opts Options) (*Result, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("solver: CG needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("solver: rhs of %d elements against %d rows", len(b), a.Rows)
	}
	opts.fill(a.Rows)

	res := &Result{X: tensor.New(a.Rows)}
	r := b.Clone() // residual b - A*0
	p := r.Clone()
	rsold, err := tensor.Dot(r, r)
	if err != nil {
		return nil, err
	}

	for res.Iterations = 0; res.Iterations < opts.MaxIterations; res.Iterations++ {
		if math.Sqrt(rsold) <= opts.Tolerance {
			res.Converged = true
			break
		}
		ap, cyc, err := mul(a, p)
		if err != nil {
			return nil, err
		}
		res.SpMVCycles += cyc
		res.SpMVCount++

		pap, err := tensor.Dot(p, ap)
		if err != nil {
			return nil, err
		}
		if pap == 0 {
			break // breakdown; report what we have
		}
		alpha := rsold / pap
		for i := range res.X {
			res.X[i] += float32(alpha) * p[i]
			r[i] -= float32(alpha) * ap[i]
		}
		rsnew, err := tensor.Dot(r, r)
		if err != nil {
			return nil, err
		}
		beta := rsnew / rsold
		for i := range p {
			p[i] = r[i] + float32(beta)*p[i]
		}
		rsold = rsnew
	}

	rn, err := residual(a, res.X, b)
	if err != nil {
		return nil, err
	}
	res.Residual = rn
	if rn <= opts.Tolerance {
		res.Converged = true
	}
	return res, nil
}
