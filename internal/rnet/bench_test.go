package rnet

import (
	"fmt"
	"math/rand"
	"testing"

	"fafnir/internal/tensor"
)

// BenchmarkRnetCombine reduces one full hardware batch (32 queries, every
// shard contributing a partial to every query) across growing fleets and
// reports the simulated combine critical path of both paths side by side:
// combine_path_cycles is the rnet tree's root completion (grows with
// log_radix(shards) switch levels), host_fold_cycles the legacy serial host
// combine over the same partials (grows linearly in shards). The wall-clock
// ns/op measures the simulation itself.
func BenchmarkRnetCombine(b *testing.B) {
	const queries = 32
	for _, shards := range []int{2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := Config{Radix: 2, Parallelism: 1}
			tr, err := NewTree(shards, cfg)
			if err != nil {
				b.Fatalf("NewTree: %v", err)
			}
			rng := rand.New(rand.NewSource(42))
			in := make([]*Partial, shards)
			for l := range in {
				in[l] = &Partial{Vectors: make([]tensor.Vector, queries)}
				for q := range in[l].Vectors {
					v := tensor.New(32)
					for i := range v {
						v[i] = float32(rng.Intn(16) - 8)
					}
					in[l].Vectors[q] = v
				}
			}
			var res *Result
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err = tr.Reduce(tensor.OpSum, queries, in)
				if err != nil {
					b.Fatalf("Reduce: %v", err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(res.CriticalPath), "combine_path_cycles")
			b.ReportMetric(float64(tr.HostFoldCycles(in, res.Combines)), "host_fold_cycles")
		})
	}
}
