package rnet

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"fafnir/internal/sim"
	"fafnir/internal/tensor"
)

// testCfg is the base tree configuration: radix 2, default timing, serial.
func testCfg() Config {
	return Config{Radix: 2, Parallelism: 1}
}

// intVector draws a dim-4 vector of small integers — the store's
// value class, for which every association order is exact.
func intVector(rng *rand.Rand) tensor.Vector {
	v := tensor.New(4)
	for i := range v {
		v[i] = float32(rng.Intn(16) - 8)
	}
	return v
}

// genLeaves draws a leaf set: nilLeaf marks whole leaves missing, nilVec
// the per-query holes inside present leaves.
func genLeaves(rng *rand.Rand, leaves, queries int, nilLeaf, nilVec float64) []*Partial {
	out := make([]*Partial, leaves)
	for l := range out {
		if rng.Float64() < nilLeaf {
			continue
		}
		p := &Partial{Vectors: make([]tensor.Vector, queries), Ready: sim.Cycle(rng.Intn(10_000))}
		for q := range p.Vectors {
			if rng.Float64() >= nilVec {
				p.Vectors[q] = intVector(rng)
			}
		}
		out[l] = p
	}
	return out
}

// hostFold is the reference: clone the first present vector in leaf order,
// apply the rest left to right — exactly the router's legacy serial fold.
func hostFold(t *testing.T, op tensor.ReduceOp, queries int, leaves []*Partial) []tensor.Vector {
	t.Helper()
	out := make([]tensor.Vector, queries)
	for _, p := range leaves {
		if p == nil {
			continue
		}
		for q, v := range p.Vectors {
			if v == nil {
				continue
			}
			if out[q] == nil {
				out[q] = v.Clone()
			} else if err := op.Apply(out[q], v); err != nil {
				t.Fatalf("Apply: %v", err)
			}
		}
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"radix one", func(c *Config) { c.Radix = 1 }, "Radix"},
		{"negative radix", func(c *Config) { c.Radix = -2 }, "Radix"},
		{"negative parallelism", func(c *Config) { c.Parallelism = -1 }, "Parallelism"},
		{"negative stall node", func(c *Config) { c.Stalls = map[int]sim.Cycle{-1: 5} }, "Stalls"},
		{"zero stall", func(c *Config) { c.Radix = 2; c.Stalls = map[int]sim.Cycle{2: 0} }, "Stalls"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testCfg()
			tc.mut(&cfg)
			if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want error mentioning %q", err, tc.want)
			}
		})
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config: %v", err)
	}
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
}

func TestNewTreeRejects(t *testing.T) {
	if _, err := NewTree(4, Config{}); err == nil || !strings.Contains(err.Error(), "disabled") {
		t.Fatalf("NewTree radix 0 = %v, want disabled error", err)
	}
	if _, err := NewTree(0, testCfg()); err == nil {
		t.Fatal("NewTree with 0 leaves succeeded")
	}
	cfg := testCfg()
	cfg.Stalls = map[int]sim.Cycle{99: 10}
	if _, err := NewTree(4, cfg); err == nil || !strings.Contains(err.Error(), "stall") {
		t.Fatalf("NewTree out-of-range stall = %v, want stall error", err)
	}
}

func TestTreeShape(t *testing.T) {
	cases := []struct {
		leaves, radix, interior, depth int
	}{
		{1, 2, 0, 0},
		{2, 2, 1, 1},
		{4, 2, 3, 2},
		{8, 2, 7, 3},
		{9, 2, 5 + 3 + 2 + 1, 4}, // 9 -> 5 -> 3 -> 2 -> 1
		{8, 4, 2 + 1, 2},         // 8 -> 2 -> 1
		{64, 4, 16 + 4 + 1, 3},
		{5, 8, 1, 1},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%dx%d", tc.leaves, tc.radix), func(t *testing.T) {
			cfg := testCfg()
			cfg.Radix = tc.radix
			tr, err := NewTree(tc.leaves, cfg)
			if err != nil {
				t.Fatalf("NewTree: %v", err)
			}
			if tr.Leaves() != tc.leaves || tr.Interior() != tc.interior || tr.Depth() != tc.depth {
				t.Fatalf("shape = (%d leaves, %d interior, depth %d), want (%d, %d, %d)",
					tr.Leaves(), tr.Interior(), tr.Depth(), tc.leaves, tc.interior, tc.depth)
			}
			// Every node except the root must have a parent with ascending
			// children covering it exactly once.
			seen := make(map[int32]int)
			for id := tr.leaves; id < len(tr.nodes); id++ {
				for _, c := range tr.nodes[id].children {
					seen[c]++
					if tr.nodes[c].parent != int32(id) {
						t.Fatalf("node %d parent = %d, want %d", c, tr.nodes[c].parent, id)
					}
				}
			}
			for id := 0; id < len(tr.nodes)-1; id++ {
				if seen[int32(id)] != 1 {
					t.Fatalf("node %d covered %d times", id, seen[int32(id)])
				}
			}
			if got := tr.Config().Radix; got != tc.radix {
				t.Fatalf("Config().Radix = %d", got)
			}
		})
	}
}

func TestReduceMatchesHostFold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := []tensor.ReduceOp{tensor.OpSum, tensor.OpMin, tensor.OpMax, tensor.OpMean}
	for _, radix := range []int{2, 3, 4} {
		for _, leaves := range []int{1, 2, 5, 8, 16} {
			cfg := testCfg()
			cfg.Radix = radix
			tr, err := NewTree(leaves, cfg)
			if err != nil {
				t.Fatalf("NewTree: %v", err)
			}
			for trial := 0; trial < 10; trial++ {
				op := ops[trial%len(ops)]
				in := genLeaves(rng, leaves, 6, 0.2, 0.3)
				res, err := tr.Reduce(op, 6, in)
				if err != nil {
					t.Fatalf("Reduce: %v", err)
				}
				want := hostFold(t, op, 6, in)
				if !reflect.DeepEqual(res.Outputs, want) {
					t.Fatalf("radix %d leaves %d trial %d: tree fold diverges from host fold", radix, leaves, trial)
				}
			}
		}
	}
}

func TestReduceOutputsAreOwned(t *testing.T) {
	tr, err := NewTree(2, testCfg())
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	// Leaf 1 missing: query 0's output passes through leaf 0 uncombined and
	// must still be a private copy.
	leaf := &Partial{Vectors: []tensor.Vector{{1, 2, 3, 4}}}
	res, err := tr.Reduce(tensor.OpSum, 1, []*Partial{leaf, nil})
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	res.Outputs[0][0] = 99
	if leaf.Vectors[0][0] != 1 {
		t.Fatal("root output aliases the leaf partial")
	}
}

func TestReduceParallelismIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, leaves := range []int{8, 17, 33} {
		in := genLeaves(rng, leaves, 8, 0.15, 0.2)
		var base *Result
		for _, par := range []int{1, 2, 0} {
			cfg := testCfg()
			cfg.Parallelism = par
			tr, err := NewTree(leaves, cfg)
			if err != nil {
				t.Fatalf("NewTree: %v", err)
			}
			res, err := tr.Reduce(tensor.OpSum, 8, in)
			if err != nil {
				t.Fatalf("Reduce: %v", err)
			}
			if base == nil {
				base = res
				continue
			}
			if !reflect.DeepEqual(res, base) {
				t.Fatalf("leaves %d parallelism %d: result diverges from serial", leaves, par)
			}
		}
	}
}

func TestReduceTiming(t *testing.T) {
	// 4 leaves, radix 2: switches 4=(0,1), 5=(2,3), root 6=(4,5).
	cfg := Config{Radix: 2, LinkCycles: 10, SwitchLatency: 5, CombineCycles: 2, Parallelism: 1}
	tr, err := NewTree(4, cfg)
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	in := make([]*Partial, 4)
	for l, ready := range []sim.Cycle{100, 40, 60, 80} {
		in[l] = &Partial{Vectors: []tensor.Vector{{1}}, Ready: ready}
	}
	res, err := tr.Reduce(tensor.OpSum, 1, in)
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	// Switch 4 fires at max(100,40)+10 = 110, done 110+5+2 = 117.
	// Switch 5 fires at max(60,80)+10 = 90, done 97.
	// Root fires at max(117,97)+10 = 127, done 127+5+2 = 134.
	if got := res.CriticalPath; got != 134 {
		t.Fatalf("CriticalPath = %d, want 134", got)
	}
	if res.Combines != 3 || res.Fires != 3 || res.LinkTransfers != 6 || res.MissingChildren != 0 {
		t.Fatalf("stats = %+v", res)
	}
	wantSpans := []SwitchSpan{
		{Node: 4, Level: 1, Fire: 110, Done: 117, Combines: 1},
		{Node: 5, Level: 1, Fire: 90, Done: 97, Combines: 1},
		{Node: 6, Level: 2, Fire: 127, Done: 134, Combines: 1},
	}
	if !reflect.DeepEqual(res.Spans, wantSpans) {
		t.Fatalf("Spans = %+v, want %+v", res.Spans, wantSpans)
	}
	// A slow sibling subtree must not delay the fast one's switch: span for
	// switch 5 fired at 90 even though leaf 0 was not ready until 100.
	if res.Spans[1].Fire != 90 {
		t.Fatalf("sibling switch stalled: fired %d", res.Spans[1].Fire)
	}
}

func TestReduceMissingLeafDoesNotBlock(t *testing.T) {
	cfg := Config{Radix: 2, LinkCycles: 10, SwitchLatency: 5, CombineCycles: 2, Parallelism: 1}
	tr, err := NewTree(4, cfg)
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	in := []*Partial{
		{Vectors: []tensor.Vector{{1}}, Ready: 50},
		nil, // lost mid-combine
		{Vectors: []tensor.Vector{{2}}, Ready: 60},
		{Vectors: []tensor.Vector{{4}}, Ready: 70},
	}
	res, err := tr.Reduce(tensor.OpSum, 1, in)
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if got := res.Outputs[0][0]; got != 7 {
		t.Fatalf("output = %v, want 7", got)
	}
	if res.MissingChildren != 1 {
		t.Fatalf("MissingChildren = %d, want 1", res.MissingChildren)
	}
	// Switch 4 fires on leaf 0 alone at 50+10=60, done 60+5 (no combine).
	// It must not wait for the dead leaf 1.
	if res.Spans[0].Fire != 60 || res.Spans[0].Done != 65 || res.Spans[0].Combines != 0 {
		t.Fatalf("switch 4 span = %+v", res.Spans[0])
	}
}

func TestReduceDarkSubtreeSkipped(t *testing.T) {
	cfg := testCfg()
	tr, err := NewTree(4, cfg)
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	// Both leaves of switch 4 lost: the whole left subtree is dark; the
	// root fires on switch 5 alone and records one missing child.
	in := []*Partial{
		nil, nil,
		{Vectors: []tensor.Vector{{2}}, Ready: 10},
		{Vectors: []tensor.Vector{{3}}, Ready: 10},
	}
	for _, par := range []int{1, 4} {
		cfg.Parallelism = par
		tr, err = NewTree(4, cfg)
		if err != nil {
			t.Fatalf("NewTree: %v", err)
		}
		res, err := tr.Reduce(tensor.OpSum, 1, in)
		if err != nil {
			t.Fatalf("Reduce: %v", err)
		}
		if got := res.Outputs[0][0]; got != 5 {
			t.Fatalf("output = %v, want 5", got)
		}
		if res.Fires != 2 || res.MissingChildren != 1 {
			t.Fatalf("par %d: Fires = %d MissingChildren = %d, want 2, 1", par, res.Fires, res.MissingChildren)
		}
	}
}

func TestReduceAllLeavesMissing(t *testing.T) {
	tr, err := NewTree(4, testCfg())
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	res, err := tr.Reduce(tensor.OpSum, 2, make([]*Partial, 4))
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if res.CriticalPath != 0 || res.Fires != 0 {
		t.Fatalf("all-dark reduce = %+v", res)
	}
	for qi, v := range res.Outputs {
		if v != nil {
			t.Fatalf("query %d produced output from no leaves", qi)
		}
	}
}

func TestReduceSingleLeaf(t *testing.T) {
	tr, err := NewTree(1, testCfg())
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	leaf := &Partial{Vectors: []tensor.Vector{{3, 4}}, Ready: 77}
	res, err := tr.Reduce(tensor.OpSum, 1, []*Partial{leaf})
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if res.CriticalPath != 77 || len(res.Spans) != 0 {
		t.Fatalf("single-leaf reduce = %+v", res)
	}
	res.Outputs[0][0] = 9
	if leaf.Vectors[0][0] != 3 {
		t.Fatal("single-leaf output aliases the partial")
	}
}

func TestReduceStalls(t *testing.T) {
	cfg := Config{Radix: 2, LinkCycles: 10, SwitchLatency: 5, CombineCycles: 2, Parallelism: 1}
	base, err := NewTree(4, cfg)
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	cfg.Stalls = map[int]sim.Cycle{4: 1000} // first interior switch
	stalled, err := NewTree(4, cfg)
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	// Equal ready times put the stalled switch on the critical path.
	in := genLeaves(rand.New(rand.NewSource(3)), 4, 2, 0, 0)
	for _, p := range in {
		p.Ready = 0
	}
	r0, err := base.Reduce(tensor.OpSum, 2, in)
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	r1, err := stalled.Reduce(tensor.OpSum, 2, in)
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if !reflect.DeepEqual(r0.Outputs, r1.Outputs) {
		t.Fatal("a stalled switch changed outputs; stalls must only delay")
	}
	if r1.CriticalPath != r0.CriticalPath+1000 {
		t.Fatalf("stalled critical path = %d, want %d", r1.CriticalPath, r0.CriticalPath+1000)
	}
	// The stalled switch's sibling still fires on time.
	if r1.Spans[1].Fire != r0.Spans[1].Fire {
		t.Fatal("stall leaked into the sibling subtree")
	}
}

func TestReduceErrors(t *testing.T) {
	tr, err := NewTree(2, testCfg())
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	if _, err := tr.Reduce(tensor.OpSum, 1, make([]*Partial, 3)); err == nil {
		t.Fatal("wrong partial count accepted")
	}
	bad := []*Partial{{Vectors: make([]tensor.Vector, 2)}, nil}
	if _, err := tr.Reduce(tensor.OpSum, 1, bad); err == nil {
		t.Fatal("wrong query-slot count accepted")
	}
	// Dimension mismatch surfaces the switch's combine error at every
	// Parallelism.
	mismatched := []*Partial{
		{Vectors: []tensor.Vector{{1, 2}}},
		{Vectors: []tensor.Vector{{1}}},
	}
	for _, par := range []int{1, 2} {
		cfg := testCfg()
		cfg.Parallelism = par
		tr, err := NewTree(2, cfg)
		if err != nil {
			t.Fatalf("NewTree: %v", err)
		}
		if _, err := tr.Reduce(tensor.OpSum, 1, mismatched); err == nil || !strings.Contains(err.Error(), "switch") {
			t.Fatalf("par %d: mismatched dims = %v, want switch error", par, err)
		}
	}
}

func TestHostFoldCycles(t *testing.T) {
	cfg := Config{Radix: 2, LinkCycles: 10, CombineCycles: 2, SwitchLatency: 5}
	tr, err := NewTree(4, cfg)
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	in := []*Partial{
		{Ready: 100}, nil, {Ready: 40}, {Ready: 80},
	}
	if got := tr.HostFoldCycles(in, 6); got != 100+10+12 {
		t.Fatalf("HostFoldCycles = %d, want 122", got)
	}
}

// TestCriticalPathLogGrowth is the acceptance check behind
// BenchmarkRnetCombine: at 8+ leaves the tree's combine critical path must
// track O(log_radix N) switch levels while the host fold's serial combine
// tracks O(N), so doubling the fleet adds one level to the tree but doubles
// the host's combine term.
func TestCriticalPathLogGrowth(t *testing.T) {
	cfg := Config{Radix: 2, LinkCycles: 64, SwitchLatency: 16, CombineCycles: 8, Parallelism: 1}
	const queries = 32 // a full hardware batch: every query holds a partial on every shard
	path := func(leaves int) (tree, host sim.Cycle) {
		tr, err := NewTree(leaves, cfg)
		if err != nil {
			t.Fatalf("NewTree: %v", err)
		}
		in := make([]*Partial, leaves)
		for l := range in {
			in[l] = &Partial{Vectors: make([]tensor.Vector, queries), Ready: 0}
			for q := range in[l].Vectors {
				in[l].Vectors[q] = tensor.Vector{1, 2, 3, 4}
			}
		}
		res, err := tr.Reduce(tensor.OpSum, queries, in)
		if err != nil {
			t.Fatalf("Reduce: %v", err)
		}
		return res.CriticalPath, tr.HostFoldCycles(in, res.Combines)
	}
	tree8, host8 := path(8)
	tree64, host64 := path(64)
	if tree8 >= host8 || tree64 >= host64 {
		t.Fatalf("tree path not below host fold: 8 leaves %d vs %d, 64 leaves %d vs %d",
			tree8, host8, tree64, host64)
	}
	// 8 -> 64 leaves is 8x the serial combine work but only 2x the tree
	// depth (3 -> 6 levels); the measured growth ratios must reflect that.
	treeGrowth := float64(tree64) / float64(tree8)
	hostGrowth := float64(host64) / float64(host8)
	if treeGrowth > 2.5 {
		t.Fatalf("tree critical path grew %.2fx from 8 to 64 leaves; want ~log growth (<= 2.5x)", treeGrowth)
	}
	if hostGrowth < 4 {
		t.Fatalf("host fold grew %.2fx from 8 to 64 leaves; want ~linear growth (>= 4x)", hostGrowth)
	}
}
