// Package rnet is the simulated in-network reduction subsystem: the fleet's
// shards (or a federation's fleets) become the leaves of a configurable-radix
// reduction tree whose interior "switch" nodes combine partial pools
// asynchronously — a switch fires the moment the last of its children's
// partials lands, with no level barrier, so a fast subtree's reduction
// overlaps a slow sibling's memory time (the FAFNIR argument moved from
// inside one node out into the network between nodes, after Flare's flexible
// in-network allreduce and Tascade's asynchronous reduction trees).
//
// Timing is charged in simulated cycles: every child→parent hop costs
// LinkCycles, every switch adds SwitchLatency when it fires, and every
// vector combine performed at a switch costs CombineCycles. The root's
// completion time is therefore the tree's *critical path* — O(log_radix N)
// switch hops instead of the host fold's O(N) serial combine — and it is the
// number the router charges as its combine phase.
//
// Determinism. A switch's output is a pure function of its children's
// outputs, and each switch folds its children in ascending child order —
// exactly the left-to-right shard order of the legacy host fold, just
// re-associated. The embedding store holds integer-valued float32 rows
// (docs/ARCHITECTURE.md §13), so re-association is exact and tree outputs
// are bit-identical to the host fold at every Parallelism setting. All
// statistics and switch spans are folded post-hoc in node-ID order, so the
// parallel path reports bit-identical cycles and traces too (the same
// construction-order argument as the engine's tree scheduler, §9).
//
// Degradation. A missing leaf (a shard lost mid-combine) simply never
// arrives: presence is computed bottom-up, a switch waits only for children
// whose subtrees hold at least one live leaf, and a fully-dark subtree is
// skipped without blocking its siblings. The router layers its
// DegradedReport accounting on top; rnet itself only reports how many
// children were missing at each switch.
package rnet

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"fafnir/internal/sim"
	"fafnir/internal/tensor"
)

// Default switch timing, in simulated cycles of the fleet clock. The link
// hop dominates (a serialized partial-pool transfer between nodes); the
// per-combine cost matches the host CPU's per-vector handle cost so the
// rnet-vs-host comparison isolates topology, not ALU speed.
const (
	DefaultLinkCycles    = 64
	DefaultSwitchLatency = 16
	DefaultCombineCycles = 8
)

// Config parameterizes one reduction tree. The zero value of every cycle
// field selects its default; Radix is the enable switch: 0 disables rnet
// entirely (callers keep their legacy host fold), and values >= 2 select the
// switch fan-in.
type Config struct {
	// Radix is the switch fan-in: every interior node reduces up to Radix
	// children. 0 disables rnet (the legacy host-fold path); 1 is invalid
	// (a chain reduces nothing).
	Radix int
	// LinkCycles is the child→parent partial-pool transfer cost per hop.
	LinkCycles sim.Cycle
	// SwitchLatency is the fixed per-switch firing cost.
	SwitchLatency sim.Cycle
	// CombineCycles is the cost of one vector combine at a switch.
	CombineCycles sim.Cycle
	// Parallelism is the switch-evaluation worker count: <= 1 evaluates
	// serially in node-ID order, larger values run the asynchronous
	// pending-children scheduler. Results are bit-identical either way.
	Parallelism int
	// Stalls maps interior node IDs (see Tree.Interior) to extra cycles
	// added to that switch's firing, modelling a slow or degraded switch
	// (the fault plan's swstall clause). Nil injects nothing.
	Stalls map[int]sim.Cycle
}

// Enabled reports whether the configuration selects the rnet combine path.
func (c Config) Enabled() bool { return c.Radix != 0 }

func (c *Config) fillDefaults() {
	if c.LinkCycles == 0 {
		c.LinkCycles = DefaultLinkCycles
	}
	if c.SwitchLatency == 0 {
		c.SwitchLatency = DefaultSwitchLatency
	}
	if c.CombineCycles == 0 {
		c.CombineCycles = DefaultCombineCycles
	}
}

// Validate reports a descriptive error naming the offending field for an
// unusable configuration.
func (c Config) Validate() error {
	switch {
	case c.Radix < 0 || c.Radix == 1:
		return fmt.Errorf("rnet: Config.Radix = %d: want 0 (disabled) or >= 2", c.Radix)
	case c.Parallelism < 0:
		return fmt.Errorf("rnet: Config.Parallelism = %d: must be non-negative", c.Parallelism)
	}
	for id, st := range c.Stalls {
		if id < 0 {
			return fmt.Errorf("rnet: Config.Stalls[%d]: negative switch node", id)
		}
		if st == 0 {
			return fmt.Errorf("rnet: Config.Stalls[%d] = 0: a stall must add cycles", id)
		}
	}
	return nil
}

// node is one tree position. IDs are dense: [0, leaves) are the leaf slots,
// interior switches follow in bottom-up level order, the root is last.
type node struct {
	children []int32 // interior only, ascending
	parent   int32   // -1 at the root
	level    int     // 0 at leaves
}

// Tree is an immutable radix reduction topology over a fixed number of
// leaves, reusable across Reduce calls. Build once per fleet.
type Tree struct {
	cfg    Config
	leaves int
	nodes  []node // dense by ID; nodes[len-1] is the root
	depth  int    // interior levels (0 for a single-leaf tree)
}

// NewTree builds the reduction topology for the given leaf count:
// consecutive runs of Radix nodes per switch, repeated bottom-up until one
// root remains. Leaf i is node ID i, matching the caller's shard order, so
// ascending-child folds reproduce the host fold's shard order.
func NewTree(leaves int, cfg Config) (*Tree, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, fmt.Errorf("rnet: NewTree with Radix = 0 (rnet disabled)")
	}
	if leaves < 1 {
		return nil, fmt.Errorf("rnet: %d leaves: need at least 1", leaves)
	}
	t := &Tree{cfg: cfg, leaves: leaves}
	t.nodes = make([]node, leaves, 2*leaves)
	for i := range t.nodes {
		t.nodes[i].parent = -1
	}
	cur := make([]int32, leaves)
	for i := range cur {
		cur[i] = int32(i)
	}
	for level := 1; len(cur) > 1; level++ {
		next := cur[:0:0]
		for lo := 0; lo < len(cur); lo += cfg.Radix {
			hi := min(lo+cfg.Radix, len(cur))
			id := int32(len(t.nodes))
			t.nodes = append(t.nodes, node{
				children: append([]int32(nil), cur[lo:hi]...),
				parent:   -1,
				level:    level,
			})
			for _, c := range cur[lo:hi] {
				t.nodes[c].parent = id
			}
			next = append(next, id)
		}
		cur = next
		t.depth = level
	}
	for id := range cfg.Stalls {
		if id < t.leaves || id >= len(t.nodes) {
			return nil, fmt.Errorf("rnet: stall on node %d: interior switches are [%d,%d)", id, t.leaves, len(t.nodes))
		}
	}
	return t, nil
}

// Leaves reports the leaf count the tree was built for.
func (t *Tree) Leaves() int { return t.leaves }

// Interior reports the number of interior switch nodes.
func (t *Tree) Interior() int { return len(t.nodes) - t.leaves }

// Depth reports the number of switch levels between a leaf and the root.
func (t *Tree) Depth() int { return t.depth }

// Config returns the tree's (default-filled) configuration.
func (t *Tree) Config() Config { return t.cfg }

// Partial is one leaf's contribution to a reduction: a dense per-query
// vector slice (nil entries mean the leaf holds nothing for that query) and
// the fleet-clock cycle at which the partial is ready to enter the network —
// the shard's own completion time, or its failover replacement's.
type Partial struct {
	// Vectors is dense over the batch's queries; a nil entry contributes
	// nothing to that query.
	Vectors []tensor.Vector
	// Ready is when the partial leaves its shard, in fleet-clock cycles.
	Ready sim.Cycle
}

// SwitchSpan is one interior switch's firing record, for trace emission and
// fault forensics. Spans are reported in node-ID order (bottom-up levels,
// left to right), which is also deterministic evaluation order.
type SwitchSpan struct {
	// Node is the switch's tree node ID (in [Tree.Leaves, Tree.Leaves+Tree.Interior)).
	Node int32
	// Level is the switch's height above the leaves (1 = first combine row).
	Level int
	// Fire is when the last contributing child's partial landed (after its
	// link hop); Done is Fire plus switch latency, combine work, and any
	// injected stall.
	Fire, Done sim.Cycle
	// Combines is how many vector combines this switch performed.
	Combines int
	// Missing is how many of this switch's children never arrived (their
	// whole subtree was dark).
	Missing int
}

// Result is one reduction's outcome.
type Result struct {
	// Outputs is dense over the batch's queries: the fully reduced vector,
	// owned by the caller (never aliasing a leaf partial), or nil when no
	// live leaf contributed to the query.
	Outputs []tensor.Vector
	// CriticalPath is the root switch's completion time: the cycle at which
	// the reduced pool is ready to transfer to the host. Zero when every
	// leaf was missing.
	CriticalPath sim.Cycle
	// Combines is the total vector combines performed across all switches;
	// it equals the combine count the legacy host fold would have performed.
	Combines int
	// Fires is how many switches fired (had at least one live child).
	Fires int
	// MissingChildren is the total count, across all switches, of children
	// whose subtrees were entirely dark.
	MissingChildren int
	// LinkTransfers is the number of child→parent partial-pool hops taken.
	LinkTransfers int
	// Spans records each firing switch in node-ID order.
	Spans []SwitchSpan
}

// reduceState is the dense per-node working state of one Reduce call.
type reduceState struct {
	outs    [][]tensor.Vector // node ID -> per-query vectors (leaves alias input)
	owned   [][]bool          // node ID -> per-query "vector is tree scratch"
	done    []sim.Cycle       // node ID -> completion cycle
	present []bool            // node ID -> subtree holds >= 1 live leaf
	spans   []SwitchSpan      // interior spans, indexed by id - leaves
	errs    []error           // interior node ID -> combine error
	pending []atomic.Int32    // interior countdowns (present children)
}

// Reduce runs one reduction: leaves[i] is leaf i's partial (nil for a leaf
// that was lost and never produced one), numQueries sizes the dense output.
// Every leaf partial present must have len(Vectors) == numQueries. The
// returned outputs never alias leaf vectors, so callers may mutate them
// (mean finalization) freely.
func (t *Tree) Reduce(op tensor.ReduceOp, numQueries int, leaves []*Partial) (*Result, error) {
	if len(leaves) != t.leaves {
		return nil, fmt.Errorf("rnet: %d partials for a %d-leaf tree", len(leaves), t.leaves)
	}
	for i, p := range leaves {
		if p != nil && len(p.Vectors) != numQueries {
			return nil, fmt.Errorf("rnet: leaf %d has %d query slots, want %d", i, len(p.Vectors), numQueries)
		}
	}
	st := &reduceState{
		outs:    make([][]tensor.Vector, len(t.nodes)),
		owned:   make([][]bool, len(t.nodes)),
		done:    make([]sim.Cycle, len(t.nodes)),
		present: make([]bool, len(t.nodes)),
		spans:   make([]SwitchSpan, t.Interior()),
		errs:    make([]error, len(t.nodes)),
	}
	for i, p := range leaves {
		if p == nil {
			continue
		}
		st.present[i] = true
		st.outs[i] = p.Vectors
		st.done[i] = p.Ready
	}
	// Presence is bottom-up and cheap; computing it first lets the async
	// scheduler skip dark subtrees entirely instead of blocking on them.
	for id := t.leaves; id < len(t.nodes); id++ {
		for _, c := range t.nodes[id].children {
			if st.present[c] {
				st.present[id] = true
				break
			}
		}
	}

	workers := t.cfg.Parallelism
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n := t.Interior(); workers > n {
		workers = n
	}
	if workers <= 1 {
		for id := t.leaves; id < len(t.nodes); id++ {
			if st.present[id] {
				st.errs[id] = t.evalSwitch(op, int32(id), st)
			}
		}
	} else {
		t.evalAsync(op, st, workers)
	}
	// Surface the minimal-ID error: IDs ascend bottom-up, so this is the
	// error the serial order reports first at every Parallelism.
	for id := t.leaves; id < len(t.nodes); id++ {
		if err := st.errs[id]; err != nil {
			return nil, err
		}
	}
	return t.assemble(numQueries, st), nil
}

// evalSwitch fires one interior switch: fold each query's child vectors in
// ascending child order, charge link/latency/combine cycles, and record the
// span. It touches only its own node's dense slots (and, for in-place
// combines, child scratch no other node will read again), which is what
// makes the dependency-driven schedule safe.
func (t *Tree) evalSwitch(op tensor.ReduceOp, id int32, st *reduceState) error {
	n := &t.nodes[id]
	var (
		fire     sim.Cycle
		combines int
		missing  int
		outs     []tensor.Vector
		owned    []bool
	)
	for _, c := range n.children {
		if !st.present[c] {
			missing++
			continue
		}
		fire = sim.Max(fire, st.done[c]+t.cfg.LinkCycles)
		if outs == nil {
			// First live child: adopt its pool. Leaf pools are borrowed
			// (owned stays false); interior pools transfer ownership.
			outs = append(outs[:0], st.outs[c]...)
			owned = make([]bool, len(outs))
			copy(owned, st.owned[c])
			continue
		}
		for qi, w := range st.outs[c] {
			if w == nil {
				continue
			}
			switch {
			case outs[qi] == nil:
				outs[qi] = w
				owned[qi] = len(st.owned[c]) > 0 && st.owned[c][qi]
			default:
				if !owned[qi] {
					outs[qi] = outs[qi].Clone()
					owned[qi] = true
				}
				if err := op.Apply(outs[qi], w); err != nil {
					return fmt.Errorf("rnet: switch %d query %d: %w", id, qi, err)
				}
				combines++
			}
		}
	}
	done := fire + t.cfg.SwitchLatency + sim.Cycle(combines)*t.cfg.CombineCycles
	if stall, ok := t.cfg.Stalls[int(id)]; ok {
		done += stall
	}
	st.outs[id] = outs
	st.owned[id] = owned
	st.done[id] = done
	st.spans[int(id)-t.leaves] = SwitchSpan{
		Node:     id,
		Level:    n.level,
		Fire:     fire,
		Done:     done,
		Combines: combines,
		Missing:  missing,
	}
	return nil
}

// assemble folds the per-node records into the Result in node-ID order —
// the post-hoc construction-order fold that keeps stats and spans
// bit-identical at every Parallelism — and clones any root output that
// still aliases a leaf partial (single-contributor queries never combined,
// so their vector is still the shard's own).
func (t *Tree) assemble(numQueries int, st *reduceState) *Result {
	root := int32(len(t.nodes) - 1)
	res := &Result{Outputs: make([]tensor.Vector, numQueries)}
	for qi, v := range st.outs[root] {
		if v == nil {
			continue
		}
		if len(st.owned[root]) > 0 && st.owned[root][qi] {
			res.Outputs[qi] = v
		} else {
			res.Outputs[qi] = v.Clone()
		}
	}
	if st.present[root] {
		res.CriticalPath = st.done[root]
	}
	for i := range st.spans {
		id := int32(t.leaves + i)
		if !st.present[id] {
			continue
		}
		sp := st.spans[i]
		res.Fires++
		res.Combines += sp.Combines
		res.MissingChildren += sp.Missing
		res.LinkTransfers += len(t.nodes[id].children) - sp.Missing
		res.Spans = append(res.Spans, sp)
	}
	return res
}

// deque is one worker's ready queue, the PR 7 pattern: the owner pushes and
// pops at the tail (a freshly readied parent is the hottest work), thieves
// take the oldest switch from the head.
type deque struct {
	mu   sync.Mutex
	buf  []int32
	head int
}

func (d *deque) push(id int32) {
	d.mu.Lock()
	d.buf = append(d.buf, id)
	d.mu.Unlock()
}

func (d *deque) popTail() (int32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.buf) <= d.head {
		d.buf = d.buf[:0]
		d.head = 0
		return 0, false
	}
	id := d.buf[len(d.buf)-1]
	d.buf = d.buf[:len(d.buf)-1]
	return id, true
}

func (d *deque) stealHead() (int32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.buf) <= d.head {
		return 0, false
	}
	id := d.buf[d.head]
	d.head++
	return id, true
}

// evalAsync runs the dependency-driven schedule: each switch's countdown is
// initialized to its number of *present* children that are themselves
// switches (a dark subtree never fires, so it is excluded up front — the
// mechanism by which a missing partial propagates without blocking
// siblings), switches whose live children are all leaves are dealt
// round-robin onto the worker deques, and each finished switch counts down
// its parent, pushing it when it hits zero. Every live switch is evaluated —
// errors are recorded per node, never cancel the schedule — so completion is
// a simple count.
func (t *Tree) evalAsync(op tensor.ReduceOp, st *reduceState, workers int) {
	if st.pending == nil {
		st.pending = make([]atomic.Int32, len(t.nodes))
	}
	live := int64(0)
	deques := make([]deque, workers)
	w := 0
	for id := t.leaves; id < len(t.nodes); id++ {
		if !st.present[id] {
			continue
		}
		live++
		waits := int32(0)
		for _, c := range t.nodes[id].children {
			if int(c) >= t.leaves && st.present[c] {
				waits++
			}
		}
		st.pending[id].Store(waits)
		if waits == 0 {
			d := &deques[w%workers]
			d.buf = append(d.buf, int32(id)) // pre-start: no lock needed
			w++
		}
	}
	var completed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for wi := 0; wi < workers; wi++ {
		go func(wi int) {
			defer wg.Done()
			d := &deques[wi]
			for {
				id, ok := d.popTail()
				for off := 1; off < workers && !ok; off++ {
					id, ok = deques[(wi+off)%workers].stealHead()
				}
				if !ok {
					if completed.Load() >= live {
						return
					}
					runtime.Gosched()
					continue
				}
				if err := t.evalSwitch(op, id, st); err != nil {
					st.errs[id] = err
				}
				// The outs/done writes above happen before this decrement;
				// whoever takes the countdown to zero owns the parent and
				// sees every live child's pool.
				if p := t.nodes[id].parent; p >= 0 && st.pending[p].Add(-1) == 0 {
					d.push(p)
				}
				completed.Add(1)
			}
		}(wi)
	}
	wg.Wait()
}

// HostFoldCycles models the critical path of the legacy host-side serial
// combine over the same leaves, for apples-to-apples benchmark comparison:
// the host starts when the slowest live partial lands (one hop away) and
// then performs every combine serially.
func (t *Tree) HostFoldCycles(leaves []*Partial, combines int) sim.Cycle {
	var ready sim.Cycle
	for _, p := range leaves {
		if p != nil {
			ready = sim.Max(ready, p.Ready)
		}
	}
	return ready + t.cfg.LinkCycles + sim.Cycle(combines)*t.cfg.CombineCycles
}
