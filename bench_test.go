// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per exhibit, wrapping the internal/exp harness), plus
// microbenchmarks of the simulator's hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// The same exhibits render as text tables via: go run ./cmd/fafnir-bench
package fafnir

import (
	"strconv"
	"testing"

	"fafnir/internal/exp"
)

// benchExp runs one registered experiment per iteration and surfaces a named
// scalar from its rows as a benchmark metric.
func benchExp(b *testing.B, id string, metric func(rep *exp.Report) (string, float64)) {
	b.Helper()
	var last *exp.Report
	for i := 0; i < b.N; i++ {
		rep, err := exp.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		last = rep
	}
	if last != nil && metric != nil {
		name, v := metric(last)
		b.ReportMetric(v, name)
	}
}

// lastCell parses the numeric tail cell of the last row.
func lastCell(rep *exp.Report, col int) float64 {
	cell := rep.Rows[len(rep.Rows)-1][col]
	if n := len(cell); n > 0 && cell[n-1] == '%' {
		cell = cell[:n-1]
	}
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return 0
	}
	return v
}

func BenchmarkFig03UniqueIndices(b *testing.B) {
	benchExp(b, "fig3", func(rep *exp.Report) (string, float64) {
		return "unique%_B32", lastCell(rep, 3)
	})
}

func BenchmarkTable1Buffers(b *testing.B) {
	benchExp(b, "table1", func(rep *exp.Report) (string, float64) {
		return "PE_KB_B32", lastCell(rep, 1)
	})
}

func BenchmarkTable4Latencies(b *testing.B) {
	benchExp(b, "table4", func(rep *exp.Report) (string, float64) {
		return "stage_cycles", lastCell(rep, 1)
	})
}

func BenchmarkFig09SpmvPlan(b *testing.B) {
	benchExp(b, "fig9", func(rep *exp.Report) (string, float64) {
		return "merges_20M_V2048", lastCell(rep, 5)
	})
}

func BenchmarkFig11SingleQuery(b *testing.B) {
	benchExp(b, "fig11", func(rep *exp.Report) (string, float64) {
		return "fafnir_total_us", lastCell(rep, 3)
	})
}

func BenchmarkFig12EndToEnd(b *testing.B) {
	benchExp(b, "fig12", func(rep *exp.Report) (string, float64) {
		return "fafnir_speedup_32r", lastCell(rep, 4)
	})
}

func BenchmarkFig13BatchScaling(b *testing.B) {
	benchExp(b, "fig13", func(rep *exp.Report) (string, float64) {
		return "fafnir_speedup_B32", lastCell(rep, 3)
	})
}

func BenchmarkFig14Spmv(b *testing.B) {
	benchExp(b, "fig14", func(rep *exp.Report) (string, float64) {
		return "speedup_RO", lastCell(rep, 5)
	})
}

func BenchmarkFig15MemorySavings(b *testing.B) {
	benchExp(b, "fig15", func(rep *exp.Report) (string, float64) {
		return "savings%_B32", lastCell(rep, 3)
	})
}

func BenchmarkTable5FPGA(b *testing.B) {
	benchExp(b, "table5", nil)
}

func BenchmarkTable6ASIC(b *testing.B) {
	benchExp(b, "table6", nil)
}

func BenchmarkFig16Power(b *testing.B) {
	benchExp(b, "fig16", nil)
}

// --- microbenchmarks of the simulator's hot paths ---

func BenchmarkLookupBatch32(b *testing.B) {
	sys, err := NewSystem(SystemConfig{RowsPerTable: 1 << 14})
	if err != nil {
		b.Fatal(err)
	}
	batch, err := sys.GenerateBatch(32, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.ResetMemory()
		if _, err := sys.Lookup(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpMVGraph4k(b *testing.B) {
	sys, err := NewSystem(SystemConfig{RowsPerTable: 1024})
	if err != nil {
		b.Fatal(err)
	}
	m := GraphMatrix(4096, 8, 3)
	x := DenseOperand(4096, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.ResetMemory()
		if _, err := sys.SpMV(m, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFanIn(b *testing.B)       { benchExp(b, "abl-fanin", nil) }
func BenchmarkAblationPage(b *testing.B)        { benchExp(b, "abl-page", nil) }
func BenchmarkAblationCache(b *testing.B)       { benchExp(b, "abl-cache", nil) }
func BenchmarkAblationSkew(b *testing.B)        { benchExp(b, "abl-skew", nil) }
func BenchmarkAblationOccupancy(b *testing.B)   { benchExp(b, "abl-occupancy", nil) }
func BenchmarkAblationInteractive(b *testing.B) { benchExp(b, "abl-interactive", nil) }
func BenchmarkAblationHBM(b *testing.B)         { benchExp(b, "abl-hbm", nil) }
func BenchmarkAblationLoad(b *testing.B)        { benchExp(b, "abl-load", nil) }
func BenchmarkAblationScaleOut(b *testing.B)    { benchExp(b, "abl-scaleout", nil) }

func BenchmarkAppGraph(b *testing.B) {
	benchExp(b, "app-graph", func(rep *exp.Report) (string, float64) {
		return "cc_speedup", lastCell(rep, 4)
	})
}

func BenchmarkAppSolver(b *testing.B) {
	benchExp(b, "app-solver", func(rep *exp.Report) (string, float64) {
		return "cg_speedup", lastCell(rep, 5)
	})
}

func BenchmarkFig06BatchExample(b *testing.B) {
	benchExp(b, "fig6", func(rep *exp.Report) (string, float64) {
		return "root_outputs", lastCell(rep, 5)
	})
}
