package fafnir

import (
	"reflect"
	"runtime"
	"testing"
)

// TestSystemDeterministicAcrossParallelism runs the same seeded system-level
// workload — fault-free and under a fault plan with a dark rank plus
// transient ECC faults — at Parallelism 1, 2, and NumCPU, and requires
// bit-identical outputs, identical PE totals and occupancy, identical cycle
// counts, and an identical degradation report at every setting.
func TestSystemDeterministicAcrossParallelism(t *testing.T) {
	levels := []int{1, 2, runtime.NumCPU()}
	for _, spec := range []string{"", "rank=0@0;ecc=0.02;seed=5"} {
		var plan FaultPlan
		if spec != "" {
			var err error
			plan, err = ParseFaultPlan(spec)
			if err != nil {
				t.Fatal(err)
			}
		}
		var want *LookupResult
		for _, par := range levels {
			sys, err := NewSystem(SystemConfig{RowsPerTable: 1024, Faults: plan, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			b, err := sys.GenerateBatch(80, 5) // several hardware batches
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Lookup(b)
			if err != nil {
				t.Fatalf("faults=%q Parallelism=%d: %v", spec, par, err)
			}
			if want == nil {
				want = res
				continue
			}
			if !reflect.DeepEqual(res.Outputs, want.Outputs) {
				t.Fatalf("faults=%q Parallelism=%d: outputs differ from serial run", spec, par)
			}
			if res.PETotals != want.PETotals || res.MaxOccupancy != want.MaxOccupancy {
				t.Fatalf("faults=%q Parallelism=%d: PE accounting diverges", spec, par)
			}
			if res.TotalCycles != want.TotalCycles || res.MemCycles != want.MemCycles ||
				res.ComputeCycles != want.ComputeCycles {
				t.Fatalf("faults=%q Parallelism=%d: cycle counts diverge (%d vs %d)",
					spec, par, res.TotalCycles, want.TotalCycles)
			}
			if !reflect.DeepEqual(res.Degraded, want.Degraded) {
				t.Fatalf("faults=%q Parallelism=%d: degraded report diverges: %+v vs %+v",
					spec, par, res.Degraded, want.Degraded)
			}
		}
	}
}
