package fafnir

import (
	"strings"
	"testing"
)

func TestNewSystemDefaults(t *testing.T) {
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumPEs() != 31 {
		t.Fatalf("NumPEs = %d, want 31", sys.NumPEs())
	}
	if sys.TotalRows() != 32*(1<<17) {
		t.Fatalf("TotalRows = %d", sys.TotalRows())
	}
}

func TestNewSystemGeometries(t *testing.T) {
	for _, ranks := range []int{2, 8, 16, 32} {
		if _, err := NewSystem(SystemConfig{Ranks: ranks, RowsPerTable: 1024}); err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
	}
	if _, err := NewSystem(SystemConfig{Ranks: 7}); err == nil {
		t.Fatal("odd rank count accepted")
	}
}

func TestLookupEndToEnd(t *testing.T) {
	sys, err := NewSystem(SystemConfig{RowsPerTable: 4096})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.GenerateBatch(16, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Lookup(b)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles == 0 || len(res.Outputs) != 16 {
		t.Fatalf("implausible result %+v", res)
	}
	golden, err := sys.Golden(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range golden {
		if !res.Outputs[i].ApproxEqual(golden[i], 1e-3) {
			t.Fatalf("query %d mismatch", i)
		}
	}
}

func TestLookupDedupToggle(t *testing.T) {
	withDedup, err := NewSystem(SystemConfig{RowsPerTable: 1024, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	without, err := NewSystem(SystemConfig{RowsPerTable: 1024, Seed: 3, DisableDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := withDedup.GenerateBatch(32, 9)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := withDedup.Lookup(b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := without.Lookup(b)
	if err != nil {
		t.Fatal(err)
	}
	if r1.MemoryReads >= r2.MemoryReads {
		t.Fatalf("dedup reads %d not below raw %d", r1.MemoryReads, r2.MemoryReads)
	}
}

func TestSpMVEndToEnd(t *testing.T) {
	sys, err := NewSystem(SystemConfig{RowsPerTable: 1024})
	if err != nil {
		t.Fatal(err)
	}
	m := GraphMatrix(1024, 4, 7)
	x := DenseOperand(1024, 8)
	res, err := sys.SpMV(m, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles == 0 {
		t.Fatal("zero SpMV runtime")
	}
	sys.ResetMemory()
	ts, err := sys.SpMVTwoStep(m, x)
	if err != nil {
		t.Fatal(err)
	}
	if !ts.Y.Equal(res.Y) {
		t.Fatal("Two-Step disagrees with Fafnir")
	}
}

func TestMemoryStatsRender(t *testing.T) {
	sys, err := NewSystem(SystemConfig{RowsPerTable: 1024})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.GenerateBatch(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Lookup(b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sys.MemoryStats(), "dram.reads") {
		t.Fatalf("stats missing reads: %q", sys.MemoryStats())
	}
	sys.ResetMemory()
	if strings.Contains(sys.MemoryStats(), "dram.reads") {
		t.Fatal("stats survived reset")
	}
}

func TestCyclesToSeconds(t *testing.T) {
	if CyclesToSeconds(200e6) != 1 {
		t.Fatal("200M cycles at 200 MHz should be 1 s")
	}
}

func TestLookupInteractiveFacade(t *testing.T) {
	sys, err := NewSystem(SystemConfig{RowsPerTable: 1024})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.GenerateBatch(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.LookupInteractive(b)
	if err != nil {
		t.Fatal(err)
	}
	if res.HWBatches != 4 {
		t.Fatalf("HWBatches = %d (one per query expected)", res.HWBatches)
	}
}

func TestOfferedLoadFacade(t *testing.T) {
	sys, err := NewSystem(SystemConfig{RowsPerTable: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var batches []Batch
	for i := 0; i < 4; i++ {
		b, err := sys.GenerateBatch(8, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		batches = append(batches, b)
	}
	res, err := sys.OfferedLoad(batches, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 4 || res.Makespan == 0 {
		t.Fatalf("load result %+v", res)
	}
}

func TestTreeDOTFacade(t *testing.T) {
	sys, err := NewSystem(SystemConfig{RowsPerTable: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sys.TreeDOT(), "digraph fafnir") {
		t.Fatal("DOT render missing header")
	}
}

func TestLookupWithFaultPlan(t *testing.T) {
	plan, err := ParseFaultPlan("rank=0@0;ecc=0.02;seed=5")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(SystemConfig{RowsPerTable: 1024, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.GenerateBatch(64, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Lookup golden-verifies internally, so success means the degraded run
	// still produced correct outputs.
	res, err := sys.Lookup(b)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Degraded
	if d == nil {
		t.Fatal("fault-injected lookup reports no degradation")
	}
	if len(d.FailedRanks) != 1 || d.FailedRanks[0] != 0 {
		t.Fatalf("FailedRanks = %v, want [0]", d.FailedRanks)
	}
	if d.RemappedReads < 1 {
		t.Fatalf("expected remapped reads, got %+v", d)
	}
}

func TestFleetFacade(t *testing.T) {
	f, err := NewFleet(FleetConfig{Rows: 4096, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.Shards() != 4 {
		t.Fatalf("Shards = %d, want the default 4", f.Shards())
	}
	b, err := f.GenerateBatch(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Lookup(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 8 || res.TotalCycles == 0 {
		t.Fatalf("implausible fleet result %+v", res)
	}
	if !res.Degraded.Empty() {
		t.Fatalf("clean fleet lookup reports degradation: %+v", res.Degraded)
	}
	for s := 0; s < f.Shards(); s++ {
		if st := f.Health(s); st != ShardHealthy {
			t.Fatalf("shard %d health %v after a clean run, want healthy", s, st)
		}
	}
}

func TestFleetFacadeDegrades(t *testing.T) {
	plan, err := ParseFleetFaultPlan("shard=1@0;seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.ShardFailures) != 1 || plan.ShardFailures[0] != (ShardFailure{Shard: 1, At: 0}) {
		t.Fatalf("parsed plan %+v, want shard 1 down at 0", plan)
	}
	f, err := NewFleet(FleetConfig{Rows: 4096, Parallelism: 1, Fleet: plan})
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.GenerateBatch(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Lookup(b)
	if err != nil {
		t.Fatalf("shard loss must degrade, not fail: %v", err)
	}
	if res.Degraded.Empty() || len(res.Degraded.Shards) == 0 {
		t.Fatalf("lookup through a dead shard reports no degradation: %+v", res.Degraded)
	}
	var entry *ShardDegradedReport
	for i := range res.Degraded.Shards {
		if res.Degraded.Shards[i].Shard == 1 {
			entry = &res.Degraded.Shards[i]
		}
	}
	if entry == nil || !entry.FailedOver {
		t.Fatalf("shard 1 did not fail over to its replica: %+v", res.Degraded.Shards)
	}
}

func TestFleetServerFacade(t *testing.T) {
	f, err := NewFleet(FleetConfig{Rows: 4096, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewFleetServer(f, ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	srv.Metrics().Render(&sb)
	if !strings.Contains(sb.String(), "fafnir_router_shard_state") {
		t.Fatal("fleet server /metrics missing the router's shard-health family")
	}
}

func TestFederationFacade(t *testing.T) {
	fd, err := NewFederation(FederationConfig{
		Fleets: 2,
		Fleet:  FleetConfig{Rows: 4096, Parallelism: 1, Rnet: RnetConfig{Radix: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fd.Shards() != 8 {
		t.Fatalf("Shards = %d, want 2 fleets x 4 shards", fd.Shards())
	}
	b, err := fd.GenerateBatch(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	b.Op = OpMean
	res, err := fd.Lookup(b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded.Empty() {
		t.Fatalf("healthy federation degraded: %+v", res.Degraded)
	}
	srv, err := NewFederationServer(fd, ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	srv.Metrics().Render(&sb)
	out := sb.String()
	for _, want := range []string{"fafnir_federation_fleet_lookups_total", "fafnir_rnet_combines_total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("federation server /metrics missing %q", want)
		}
	}
	if topo := srv.Topology(); !strings.Contains(topo, "2 fleets x 4 shards") {
		t.Fatalf("Topology() = %q, want the federation shape", topo)
	}
}

func TestSystemConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  SystemConfig
		want string // substring naming the offending field and value
	}{
		{"zero config is valid", SystemConfig{}, ""},
		{"paper config is valid", SystemConfig{Ranks: 32, RowsPerTable: 1 << 17, BatchCapacity: 32, QuerySize: 16}, ""},
		{"negative ranks", SystemConfig{Ranks: -4}, "SystemConfig.Ranks = -4"},
		{"odd ranks", SystemConfig{Ranks: 7}, "SystemConfig.Ranks = 7"},
		{"negative rows", SystemConfig{RowsPerTable: -1024}, "SystemConfig.RowsPerTable = -1024"},
		{"negative capacity", SystemConfig{BatchCapacity: -1}, "SystemConfig.BatchCapacity = -1"},
		{"negative query size", SystemConfig{QuerySize: -16}, "SystemConfig.QuerySize = -16"},
		{"negative parallelism", SystemConfig{Parallelism: -2}, "SystemConfig.Parallelism = -2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want an error naming %q", err, tc.want)
			}
			// NewSystem must refuse the same config with the same message.
			if _, nerr := NewSystem(tc.cfg); nerr == nil || nerr.Error() != err.Error() {
				t.Fatalf("NewSystem() = %v, want the Validate error %v", nerr, err)
			}
		})
	}
}
