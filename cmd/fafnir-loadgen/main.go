// Command fafnir-loadgen drives a fafnir-serve instance with a Zipf-skewed
// lookup workload and reports client-side latency plus the server's measured
// coalescing win (reads per query, scraped from /metrics).
//
// Two load models:
//
//	closed loop: -clients N        N users issue requests back to back
//	open   loop: -qps R            requests arrive at a fixed rate R,
//	                               independent of completions
//
// Examples:
//
//	fafnir-loadgen -url http://127.0.0.1:8080 -clients 8 -duration 5s
//	fafnir-loadgen -url http://127.0.0.1:8080 -qps 10000 -duration 2s
//	fafnir-loadgen -clients 4 -requests 64 -dump-metrics
//	fafnir-loadgen -users 1000000 -clients 8            # per-user hot sets
//	fafnir-loadgen -qps 20000 -capacity 8 -duration 8s  # capacity sweep to the knee
//	fafnir-loadgen -qps 5000 -duration 2s -record w.jsonl   # capture the workload
//	fafnir-loadgen -replay w.jsonl                          # re-offer it verbatim
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fafnir/internal/telemetry"
)

// logger carries the run's summary output; text mode renders byte-identically
// to the fmt.Printf lines it replaced, json mode emits one object per line.
var logger *telemetry.Logger

// logf prints one summary line through the shared logger.
func logf(format string, args ...any) { logger.Infof(format, args...) }

type lookupRequest struct {
	Indices   []uint64 `json:"indices"`
	Op        string   `json:"op,omitempty"`
	Priority  string   `json:"priority,omitempty"`
	TimeoutMS int      `json:"timeout_ms,omitempty"`
}

type outcome struct {
	status  int
	latency time.Duration
	// pri is the request's QoS lane ("" when no -mix was given).
	pri string
	// degraded marks a 200 whose body carried a degraded report (the batch
	// absorbed faults; outputs may be partial).
	degraded bool
	// retries is how many 503 rejections this request retried through before
	// its terminal status.
	retries int
}

// priorityMix is the -mix flag parsed: percent of traffic on the high and
// low lanes, the rest travelling normal.
type priorityMix struct{ high, low int }

func (m priorityMix) active() bool { return m.high > 0 || m.low > 0 }

// pick draws one request's lane from the per-request rng, so the mix is
// deterministic under a fixed -seed.
func (m priorityMix) pick(rng *rand.Rand) string {
	if !m.active() {
		return ""
	}
	r := rng.Intn(100)
	switch {
	case r < m.high:
		return "high"
	case r < m.high+m.low:
		return "low"
	default:
		return "normal"
	}
}

func parseMix(s string) (priorityMix, error) {
	var m priorityMix
	if s == "" {
		return m, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("bad -mix clause %q (want lane=percent)", part)
		}
		pct, err := strconv.Atoi(v)
		if err != nil || pct < 0 || pct > 100 {
			return m, fmt.Errorf("bad -mix percent %q in clause %q", v, part)
		}
		switch k {
		case "high":
			m.high = pct
		case "low":
			m.low = pct
		case "normal":
			// The remainder is normal by construction.
		default:
			return m, fmt.Errorf("unknown -mix lane %q (want high, normal, or low)", k)
		}
	}
	if m.high+m.low > 100 {
		return m, fmt.Errorf("-mix lanes sum past 100%%")
	}
	return m, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fafnir-loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "fafnir-serve base URL")
		clients  = flag.Int("clients", 4, "closed loop: concurrent users (ignored when -qps > 0)")
		qps      = flag.Float64("qps", 0, "open loop: offered request rate (0 = closed loop)")
		duration = flag.Duration("duration", 2*time.Second, "run length")
		requests = flag.Int("requests", 0, "total request cap (0 = duration-bound only)")
		q        = flag.Int("q", 16, "indices per query")
		rows     = flag.Uint64("rows", 1<<17, "index space to draw from (must not exceed the server's row count)")
		zipf     = flag.Float64("zipf", 1.3, "Zipf skew (<=1 draws uniformly)")
		seed     = flag.Int64("seed", 1, "workload seed")
		op       = flag.String("op", "sum", "pooling op: sum|min|max|mean")
		timeout  = flag.Int("timeout-ms", 0, "per-request timeout_ms field (0 = server default)")
		retries  = flag.Int("retries", 0, "max retries per request after a 503, honoring its Retry-After")
		retryU   = flag.Duration("retry-unit", time.Second, "how long one Retry-After second sleeps (compress for tests)")
		mixFlag  = flag.String("mix", "", `QoS priority mix, e.g. "high=20,low=80" (percent; the rest travels normal)`)
		users    = flag.Int64("users", 0, "simulated user population: each request belongs to a seeded user whose Zipf hot set is rotated to a user-specific region of the row space (0 = one shared hot set)")
		capSteps = flag.Int("capacity", 0, "capacity planning: sweep this many offered-QPS steps up to -qps, reporting p99 and shed per step and the saturation knee (requires -qps)")
		dump     = flag.Bool("dump-metrics", false, "print the raw /metrics body after the run")
		logFmt   = flag.String("log-format", "text", "summary output format: text or json")
		recPath  = flag.String("record", "", "capture the offered workload to this JSONL file (arrival offset, op, indices, lane, deadline per request)")
		rePath   = flag.String("replay", "", "replay a -record capture verbatim instead of generating load (workload flags are ignored)")
	)
	flag.Parse()

	var err error
	logger, err = telemetry.NewLogger(os.Stdout, *logFmt)
	if err != nil {
		return err
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}

	client := &http.Client{Timeout: 30 * time.Second}
	var sent atomic.Int64
	cap64 := int64(*requests)
	admit := func() bool {
		if cap64 <= 0 {
			return true
		}
		return sent.Add(1) <= cap64
	}

	var (
		mu       sync.Mutex
		outcomes []outcome
	)
	record := func(o outcome) {
		mu.Lock()
		outcomes = append(outcomes, o)
		mu.Unlock()
	}

	// fireReq posts one ready payload, honoring the 503 retry budget, and
	// records the outcome. Both generated and replayed requests funnel here.
	fireReq := func(payload []byte, pri string) {
		start := time.Now()
		var retried int
		for {
			status, degraded, retryAfter, err := post(client, *url, payload)
			if err != nil {
				record(outcome{status: -1, latency: time.Since(start), pri: pri, retries: retried})
				return
			}
			if status == http.StatusServiceUnavailable && retried < *retries {
				retried++
				time.Sleep(time.Duration(retryAfter) * *retryU)
				continue
			}
			record(outcome{status: status, latency: time.Since(start), pri: pri, degraded: degraded, retries: retried})
			return
		}
	}

	// The workload capture: every generated request appends one record at
	// fire time (arrival offset, op, indices, lane, deadline), written as
	// sorted JSONL after the run so -replay can re-offer it verbatim.
	var (
		recMu    sync.Mutex
		captured []recordedRequest
	)
	begin := time.Now()
	fire := func(rng *rand.Rand, z *rand.Zipf) {
		pri := mix.pick(rng)
		var off uint64
		if *users > 0 {
			// Each request belongs to one of -users simulated users; the
			// user identity hashes (splitmix64) to an offset that rotates
			// the Zipf hot set into a user-specific region of the row
			// space, so the aggregate stream carries a long per-user tail
			// instead of one shared global head.
			off = splitmix64(uint64(*seed) ^ uint64(rng.Int63n(*users))) % *rows
		}
		idx := drawIndices(rng, z, *q, *rows, off)
		if *recPath != "" {
			rr := recordedRequest{
				TUS: time.Since(begin).Microseconds(), Op: *op,
				Indices: idx, Lane: pri, TimeoutMS: *timeout,
			}
			recMu.Lock()
			captured = append(captured, rr)
			recMu.Unlock()
		}
		payload, _ := json.Marshal(lookupRequest{Indices: idx, Op: *op, Priority: pri, TimeoutMS: *timeout})
		fireReq(payload, pri)
	}

	// openLoop offers requests at a fixed rate for dur, independent of
	// completions, with bounded in-flight. The launch counter persists
	// across calls so per-request seeds stay unique through a capacity
	// sweep's steps.
	var launched int64
	openLoop := func(offered float64, dur time.Duration) {
		begin := time.Now()
		deadline := begin.Add(dur)
		interval := time.Duration(float64(time.Second) / offered)
		if interval <= 0 {
			interval = time.Microsecond
		}
		sem := make(chan struct{}, 4096)
		var wg sync.WaitGroup
		var stepLaunched int64
		for now := time.Now(); now.Before(deadline); now = time.Now() {
			if !admit() {
				break
			}
			launched++
			stepLaunched++
			wg.Add(1)
			sem <- struct{}{}
			go func(i int64) {
				defer wg.Done()
				defer func() { <-sem }()
				rng := rand.New(rand.NewSource(*seed + i))
				z := newZipf(rng, *zipf, *rows)
				fire(rng, z)
			}(launched)
			next := begin.Add(time.Duration(stepLaunched) * interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
		wg.Wait()
	}

	switch {
	case *rePath != "":
		// Replay: re-offer a captured workload verbatim — same arrival
		// offsets, ops, indices, lanes, and deadlines; every workload flag
		// is ignored.
		reqs, err := loadRecorded(*rePath)
		if err != nil {
			return err
		}
		logf("replaying %d requests from %s", len(reqs), *rePath)
		sem := make(chan struct{}, 4096)
		var wg sync.WaitGroup
		for i := range reqs {
			rr := reqs[i]
			if d := time.Until(begin.Add(time.Duration(rr.TUS) * time.Microsecond)); d > 0 {
				time.Sleep(d)
			}
			payload, _ := json.Marshal(lookupRequest{Indices: rr.Indices, Op: rr.Op, Priority: rr.Lane, TimeoutMS: rr.TimeoutMS})
			wg.Add(1)
			sem <- struct{}{}
			go func(p []byte, lane string) {
				defer wg.Done()
				defer func() { <-sem }()
				fireReq(p, lane)
			}(payload, rr.Lane)
		}
		wg.Wait()
	case *capSteps > 0:
		// Capacity sweep: step the offered rate up to -qps, measuring each
		// step in isolation, then report the saturation knee.
		if *qps <= 0 {
			return fmt.Errorf("-capacity requires -qps (the sweep ceiling)")
		}
		stepDur := *duration / time.Duration(*capSteps)
		var steps []capStep
		for s := 1; s <= *capSteps; s++ {
			offered := *qps * float64(s) / float64(*capSteps)
			mark := len(outcomes)
			stepBegin := time.Now()
			openLoop(offered, stepDur)
			steps = append(steps, summarizeStep(offered, outcomes[mark:], time.Since(stepBegin)))
		}
		reportCapacity(steps)
		return scrape(client, *url, *dump)
	case *qps > 0:
		openLoop(*qps, *duration)
	default:
		deadline := begin.Add(*duration)
		var wg sync.WaitGroup
		for c := 0; c < *clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(*seed + int64(c)*7919))
				z := newZipf(rng, *zipf, *rows)
				for time.Now().Before(deadline) && admit() {
					fire(rng, z)
				}
			}(c)
		}
		wg.Wait()
	}
	elapsed := time.Since(begin)

	if *recPath != "" {
		if err := saveRecorded(*recPath, captured); err != nil {
			return err
		}
		logf("recorded %d requests to %s", len(captured), *recPath)
	}
	report(outcomes, elapsed, *qps)
	return scrape(client, *url, *dump)
}

// recordedRequest is one captured workload request, one JSONL line per
// request: when it was offered (microseconds after the run began), what it
// asked for, and which lane and deadline it carried.
type recordedRequest struct {
	TUS       int64    `json:"t_us"`
	Op        string   `json:"op,omitempty"`
	Indices   []uint64 `json:"indices"`
	Lane      string   `json:"lane,omitempty"`
	TimeoutMS int      `json:"timeout_ms,omitempty"`
}

// saveRecorded writes the capture as JSONL sorted by arrival offset.
func saveRecorded(path string, reqs []recordedRequest) error {
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].TUS < reqs[j].TUS })
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for i := range reqs {
		if err := enc.Encode(&reqs[i]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadRecorded reads a -record capture, sorted by arrival offset.
func loadRecorded(path string) ([]recordedRequest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var reqs []recordedRequest
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var rr recordedRequest
		if err := json.Unmarshal(sc.Bytes(), &rr); err != nil {
			return nil, fmt.Errorf("%s:%d: bad record: %w", path, line, err)
		}
		if len(rr.Indices) == 0 {
			return nil, fmt.Errorf("%s:%d: record carries no indices", path, line)
		}
		reqs = append(reqs, rr)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("%s: empty capture", path)
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].TUS < reqs[j].TUS })
	return reqs, nil
}

// capStep is one measured rung of a -capacity sweep.
type capStep struct {
	offered  float64
	achieved float64
	ok       int
	shed     int
	other    int
	p50, p99 time.Duration
}

func summarizeStep(offered float64, outcomes []outcome, elapsed time.Duration) capStep {
	st := capStep{offered: offered}
	var lat []time.Duration
	for _, o := range outcomes {
		switch o.status {
		case http.StatusOK:
			st.ok++
			lat = append(lat, o.latency)
		case http.StatusServiceUnavailable:
			st.shed++
		default:
			st.other++
		}
	}
	if elapsed > 0 {
		st.achieved = float64(st.ok) / elapsed.Seconds()
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		pct := func(p float64) time.Duration { return lat[int(p*float64(len(lat)-1))] }
		st.p50, st.p99 = pct(0.50), pct(0.99)
	}
	return st
}

// reportCapacity prints the sweep table and locates the capacity knee: the
// first step that sheds load or whose p99 blows past 3x the first step's —
// the offered rate a deployment should plan under.
func reportCapacity(steps []capStep) {
	logf("capacity sweep:")
	logf("  offered qps  achieved qps    ok   shed  other       p50       p99")
	for _, st := range steps {
		logf("  %11.0f  %12.0f  %4d  %5d  %5d  %8v  %8v",
			st.offered, st.achieved, st.ok, st.shed, st.other,
			st.p50.Round(time.Microsecond), st.p99.Round(time.Microsecond))
	}
	if len(steps) == 0 {
		return
	}
	base := steps[0].p99
	for _, st := range steps {
		if st.shed > 0 || (base > 0 && st.p99 > 3*base) {
			why := "sheds load"
			if st.shed == 0 {
				why = fmt.Sprintf("p99 %v > 3x baseline %v", st.p99.Round(time.Microsecond), base.Round(time.Microsecond))
			}
			logf("capacity knee: ~%.0f offered qps (%s); plan below this rate", st.offered, why)
			return
		}
	}
	logf("no knee within sweep: clean through %.0f offered qps; raise -qps to find saturation",
		steps[len(steps)-1].offered)
}

func newZipf(rng *rand.Rand, s float64, rows uint64) *rand.Zipf {
	if s <= 1 {
		return nil
	}
	return rand.NewZipf(rng, s, 1, rows-1)
}

func drawIndices(rng *rand.Rand, z *rand.Zipf, q int, rows, off uint64) []uint64 {
	seen := make(map[uint64]struct{}, q)
	idx := make([]uint64, 0, q)
	for len(idx) < q {
		var v uint64
		if z != nil {
			v = z.Uint64()
		} else {
			v = uint64(rng.Int63n(int64(rows)))
		}
		v = (v + off) % rows // rotate into the drawing user's hot region
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		idx = append(idx, v)
	}
	return idx
}

// splitmix64 is the standard 64-bit finalizer: a cheap, well-mixed hash
// from user identity to hot-set offset, stable across runs under one seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// post issues one lookup and reports (status, degraded, retryAfterSeconds).
// A 200 body is scanned for the degraded report; a 503's Retry-After header
// is parsed for the backoff hint (1 when absent or unparsable).
func post(client *http.Client, base string, payload []byte) (int, bool, int, error) {
	resp, err := client.Post(base+"/v1/lookup", "application/json", bytes.NewReader(payload))
	if err != nil {
		return 0, false, 0, err
	}
	defer resp.Body.Close()
	retryAfter := 1
	if s := resp.Header.Get("Retry-After"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			retryAfter = v
		}
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, false, retryAfter, nil
	}
	var wire struct {
		Degraded json.RawMessage `json:"degraded"`
	}
	degraded := json.NewDecoder(resp.Body).Decode(&wire) == nil && len(wire.Degraded) > 0
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, degraded, retryAfter, nil
}

func report(outcomes []outcome, elapsed time.Duration, qps float64) {
	var ok, degraded, overload, deadline, errs, retried, retries int
	lat := make([]time.Duration, 0, len(outcomes))
	for _, o := range outcomes {
		switch {
		case o.status == http.StatusOK:
			ok++
			if o.degraded {
				degraded++
			}
			lat = append(lat, o.latency)
		case o.status == http.StatusServiceUnavailable:
			overload++
		case o.status == http.StatusGatewayTimeout:
			deadline++
		default:
			errs++
		}
		if o.retries > 0 {
			retried++
			retries += o.retries
		}
	}
	logf("sent %d in %v: %d ok, %d overload (503), %d deadline (504), %d other",
		len(outcomes), elapsed.Round(time.Millisecond), ok, overload, deadline, errs)
	if degraded > 0 || retried > 0 {
		logf("robustness: %d degraded (200 with partial or failed-over results), %d requests retried %d 503s",
			degraded, retried, retries)
	}
	if qps > 0 {
		logf("offered %.0f qps, achieved %.0f qps", qps, float64(ok)/elapsed.Seconds())
	} else {
		logf("achieved %.0f requests/sec", float64(ok)/elapsed.Seconds())
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		pct := func(p float64) time.Duration { return lat[int(p*float64(len(lat)-1))] }
		logf("latency p50 %v  p95 %v  p99 %v  max %v",
			pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
			pct(0.99).Round(time.Microsecond), lat[len(lat)-1].Round(time.Microsecond))
	}
	reportLanes(outcomes)
}

// reportLanes breaks the run down per QoS lane when a -mix was active: how
// much of each lane succeeded, how much was shed (503), and the lane's
// latency percentiles — the p99-under-overload view the QoS gate checks.
func reportLanes(outcomes []outcome) {
	mixed := false
	for _, o := range outcomes {
		if o.pri != "" {
			mixed = true
			break
		}
	}
	if !mixed {
		return
	}
	for _, lane := range []string{"high", "normal", "low"} {
		var ok, shed, other int
		var lat []time.Duration
		for _, o := range outcomes {
			if o.pri != lane {
				continue
			}
			switch o.status {
			case http.StatusOK:
				ok++
				lat = append(lat, o.latency)
			case http.StatusServiceUnavailable:
				shed++
			default:
				other++
			}
		}
		if ok+shed+other == 0 {
			continue
		}
		line := fmt.Sprintf("lane %s: %d ok, %d shed (503), %d other", lane, ok, shed, other)
		if len(lat) > 0 {
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			pct := func(p float64) time.Duration { return lat[int(p*float64(len(lat)-1))] }
			line += fmt.Sprintf("  p50 %v  p99 %v",
				pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond))
		}
		logf("%s", line)
	}
}

// scrape pulls /metrics and prints the server-side coalescing summary.
func scrape(client *http.Client, base string, dump bool) error {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if len(raw) == 0 {
		return fmt.Errorf("empty /metrics body")
	}
	vals := parseMetrics(string(raw))
	queries := vals["fafnir_serve_queries_total"]
	batches := vals["fafnir_serve_batches_total"]
	reads := vals["fafnir_serve_dram_reads_total"]
	naive := vals["fafnir_serve_naive_reads_total"]
	if queries > 0 && batches > 0 {
		logf("server: %.0f queries in %.0f batches (coalesce factor %.2f), %.2f reads/query (naive %.2f, saved %.0f%%)",
			queries, batches, queries/batches, reads/queries, naive/queries,
			100*(1-reads/naive))
	}
	if d := vals["fafnir_serve_degraded_total"]; d > 0 {
		logf("server: %.0f degraded responses from %.0f degraded batches",
			d, vals["fafnir_serve_degraded_batches_total"])
	}
	if hits, misses := vals["fafnir_cache_hits_total"], vals["fafnir_cache_misses_total"]; hits+misses > 0 {
		logf("server: cache %.0f hits / %.0f misses (hit ratio %.2f), %.0f evictions, %.0f resident bytes",
			hits, misses, hits/(hits+misses), vals["fafnir_cache_evictions_total"],
			vals["fafnir_cache_resident_bytes"])
	}
	sh, sn, sl := vals[`fafnir_serve_shed_total{lane="high"}`],
		vals[`fafnir_serve_shed_total{lane="normal"}`],
		vals[`fafnir_serve_shed_total{lane="low"}`]
	if sh+sn+sl > 0 {
		logf("server: shed high=%.0f normal=%.0f low=%.0f", sh, sn, sl)
	}
	rollup(vals, "fafnir_federation_fleet_lookups_total", "fleet", "fleet lookups")
	rollup(vals, "fafnir_router_shard_lookups_total", "shard", "shard lookups")
	if c := vals["fafnir_rnet_combines_total"]; c > 0 {
		logf("server: rnet combine — %.0f switch combines in %.0f fires, %.0f link hops, last critical path %.0f cycles",
			c, vals["fafnir_rnet_switch_fires_total"], vals["fafnir_rnet_link_transfers_total"],
			vals["fafnir_rnet_critical_path_cycles"])
	}
	if dump {
		os.Stdout.Write(raw)
	}
	return nil
}

// rollup prints the per-member traffic distribution of one labelled family
// (per-shard lookups in fleet mode, per-fleet lookups under a federation):
// total traffic, each member's share, and the hottest/coldest imbalance —
// the placement-skew view capacity planning reads first.
func rollup(vals map[string]float64, family, label, what string) {
	prefix := family + "{" + label + `="`
	type member struct {
		id int
		v  float64
	}
	var members []member
	var total float64
	for k, v := range vals {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		id, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(k, prefix), `"}`))
		if err != nil {
			continue
		}
		members = append(members, member{id: id, v: v})
		total += v
	}
	if len(members) == 0 || total == 0 {
		return
	}
	sort.Slice(members, func(i, j int) bool { return members[i].id < members[j].id })
	minM, maxM := members[0], members[0]
	var parts []string
	for _, m := range members {
		parts = append(parts, fmt.Sprintf("%d=%.0f", m.id, m.v))
		if m.v < minM.v {
			minM = m
		}
		if m.v > maxM.v {
			maxM = m
		}
	}
	line := fmt.Sprintf("server: %s %.0f total (%s)", what, total, strings.Join(parts, " "))
	if minM.v > 0 {
		line += fmt.Sprintf(", imbalance %.2fx (%s %d hottest, %s %d coldest)",
			maxM.v/minM.v, label, maxM.id, label, minM.id)
	}
	logf("%s", line)
}

// parseMetrics reads sample lines of the Prometheus text format. Unlabelled
// samples key by bare family name; labelled samples key by the full
// name{labels} string (e.g. `fafnir_serve_shed_total{lane="low"}`).
func parseMetrics(body string) map[string]float64 {
	vals := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if f, err := strconv.ParseFloat(val, 64); err == nil {
			vals[name] = f
		}
	}
	return vals
}
