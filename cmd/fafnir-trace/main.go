// Command fafnir-trace generates, inspects, and replays embedding-lookup
// workload traces in the JSON interchange format of internal/trace.
//
// Examples:
//
//	fafnir-trace gen -n 64 -q 16 -zipf 1.3 -out workload.json
//	fafnir-trace stats workload.json
//	fafnir-trace run -engine fafnir workload.json
//	fafnir-trace run -engine recnmp workload.json
//	fafnir-trace validate run-trace.json   # checks a fafnir-sim -trace-out file
//	fafnir-trace report run-trace.json     # critical-path latency attribution
package main

import (
	"flag"
	"fmt"
	"os"

	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	core "fafnir/internal/fafnir"
	"fafnir/internal/memmap"
	"fafnir/internal/recnmp"
	"fafnir/internal/sim"
	"fafnir/internal/telemetry"
	"fafnir/internal/tensor"
	"fafnir/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		fail(fmt.Errorf("usage: fafnir-trace gen|stats|run|validate|report ..."))
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fafnir-trace:", err)
	os.Exit(1)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		n    = fs.Int("n", 32, "number of queries")
		q    = fs.Int("q", 16, "indices per query")
		rows = fs.Uint64("rows", 1<<22, "index space")
		zipf = fs.Float64("zipf", 1.3, "Zipf skew (<=1 for uniform)")
		seed = fs.Int64("seed", 1, "generator seed")
		out  = fs.String("out", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	gcfg := embedding.GeneratorConfig{NumQueries: *n, QuerySize: *q, Rows: *rows, Seed: *seed}
	if *zipf > 1 {
		gcfg.Dist = embedding.Zipf
		gcfg.ZipfS = *zipf
	}
	gen, err := embedding.NewGenerator(gcfg)
	if err != nil {
		return err
	}
	tr := trace.FromBatch(gen.Batch(tensor.OpSum), *rows)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return trace.Save(w, tr)
}

func loadTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Load(f)
}

func cmdStats(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: fafnir-trace stats <file>")
	}
	tr, err := loadTrace(args[0])
	if err != nil {
		return err
	}
	s, err := tr.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("queries:         %d\n", s.NumQueries)
	fmt.Printf("total accesses:  %d\n", s.TotalAccesses)
	fmt.Printf("unique indices:  %d (%.1f%%)\n", s.UniqueIndices, 100*s.UniqueFraction)
	fmt.Printf("max query size:  %d\n", s.MaxQuerySize)
	fmt.Printf("pooling op:      %s\n", tr.Op)
	return nil
}

// cmdValidate checks a Chrome trace-event file (as written by
// fafnir-sim -trace-out) for structural validity: well-formed JSON, known
// event phases, and non-decreasing timestamps within every (pid, tid) lane.
func cmdValidate(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: fafnir-trace validate <chrome-trace.json>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	n, err := telemetry.ValidateChrome(data)
	if err != nil {
		return fmt.Errorf("%s: %w", args[0], err)
	}
	fmt.Printf("%s: valid Chrome trace, %d events\n", args[0], n)
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	engine := fs.String("engine", "fafnir", "fafnir or recnmp")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: fafnir-trace run [-engine X] <file>")
	}
	tr, err := loadTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := tr.Batch()
	if err != nil {
		return err
	}

	mcfg := dram.DDR4()
	rowsPer := int((tr.Rows + 31) / 32)
	layout := memmap.Uniform(mcfg, 512, 32, rowsPer)
	store := embedding.MustStore(layout.TotalRows(), 128, 1)
	mem := dram.MustSystem(mcfg)

	us := func(c sim.Cycle) float64 { return sim.Seconds(c, 200) * 1e6 }
	switch *engine {
	case "fafnir":
		eng, err := core.NewEngine(core.Default())
		if err != nil {
			return err
		}
		res, err := eng.TimedLookup(store, layout, mem, b, true)
		if err != nil {
			return err
		}
		fmt.Printf("fafnir: %d queries in %.2f us (%d unique reads, %d hardware batches)\n",
			b.NumQueries(), us(res.TotalCycles), res.MemoryReads, res.HWBatches)
	case "recnmp":
		eng, err := recnmp.NewEngine(recnmp.Default())
		if err != nil {
			return err
		}
		res, err := eng.TimedLookup(store, layout, mem, b)
		if err != nil {
			return err
		}
		fmt.Printf("recnmp: %d queries in %.2f us (NDP fraction %.0f%%, %d raw forwards)\n",
			b.NumQueries(), us(res.TotalCycles), 100*res.NDPFraction(), res.ForwardedRaw)
	default:
		return fmt.Errorf("unknown engine %q", *engine)
	}
	return nil
}
