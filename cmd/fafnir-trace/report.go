package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// The report subcommand reads a Chrome trace-event file (a fafnir-sim
// -trace-out dump or a ?debug=trace echo from fafnir-serve) and attributes
// the traced window's latency to named pipeline stages by interval union, so
// a slow request can be answered with "where did the time go" instead of a
// raw event soup.
//
// The serving layer's own events (pid 2) run on a wall-clock timeline
// incommensurate with the 200 MHz simulated one, so they are reported as a
// separate wall-side section and excluded from the simulated-window coverage
// number.

// reportEvent is the decoded slice of one trace event the report needs.
type reportEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"`
}

// pidServe mirrors telemetry.PIDServe without importing it here: the serve
// process's events carry wall-clock timestamps, not simulated ones.
const pidServe = 2

// reportStages maps event names to attribution stages, in display order.
var reportStages = []struct{ stage, help string }{
	{"memory", "DRAM activates, precharges, and column reads"},
	{"backend", "hardware gather+reduce batches (engine and shard windows)"},
	{"pe", "reduction-tree PE activity (inside backend)"},
	{"failover", "replica replays after shard failure"},
	{"combine", "partial-pool combining: host folds and rnet switch hops"},
}

// stageOf buckets one simulated-timeline span by name; "" means unattributed.
func stageOf(name string) string {
	switch name {
	case "PRE", "ACT", "RD":
		return "memory"
	case "hw_batch", "shard.lookup", "fleet.lookup":
		return "backend"
	case "pe.stage", "pe.compare", "pe.reduce", "pe.forward":
		return "pe"
	case "shard.failover":
		return "failover"
	case "combine", "switch", "fleet-switch":
		return "combine"
	}
	return ""
}

type interval struct{ lo, hi float64 }

// unionLen merges intervals and returns the total covered length.
func unionLen(ivs []interval) float64 {
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	total, lo, hi := 0.0, ivs[0].lo, ivs[0].hi
	for _, iv := range ivs[1:] {
		if iv.lo > hi {
			total += hi - lo
			lo, hi = iv.lo, iv.hi
			continue
		}
		if iv.hi > hi {
			hi = iv.hi
		}
	}
	return total + (hi - lo)
}

func cmdReport(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: fafnir-trace report <chrome-trace.json>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []reportEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: not a Chrome trace: %w", args[0], err)
	}

	// Partition spans: simulated-timeline spans bucket into stages; serve
	// spans (wall timeline) collect separately.
	byStage := map[string][]interval{}
	var attributed, simAll []interval
	var serveReq, serveFlush []reportEvent
	simSpans := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.PID == pidServe {
			switch ev.Name {
			case "request":
				serveReq = append(serveReq, ev)
			case "flush":
				serveFlush = append(serveFlush, ev)
			}
			continue
		}
		iv := interval{ev.TS, ev.TS + ev.Dur}
		simSpans++
		simAll = append(simAll, iv)
		if st := stageOf(ev.Name); st != "" {
			byStage[st] = append(byStage[st], iv)
			attributed = append(attributed, iv)
		}
	}
	if simSpans == 0 && len(serveReq) == 0 && len(serveFlush) == 0 {
		return fmt.Errorf("%s: no duration spans to attribute", args[0])
	}

	if simSpans > 0 {
		var lo, hi float64
		first := true
		for _, iv := range simAll {
			if first || iv.lo < lo {
				lo = iv.lo
			}
			if first || iv.hi > hi {
				hi = iv.hi
			}
			first = false
		}
		window := hi - lo
		fmt.Printf("simulated timeline: %d spans, window %.2f us\n", simSpans, window)
		fmt.Printf("%-10s %12s %8s  %s\n", "stage", "busy us", "window%", "what")
		busiest, busiestUS := "", 0.0
		for _, st := range reportStages {
			busy := unionLen(byStage[st.stage])
			if len(byStage[st.stage]) == 0 {
				continue
			}
			fmt.Printf("%-10s %12.2f %7.1f%%  %s\n", st.stage, busy, pct(busy, window), st.help)
			// The pe stage nests inside backend spans; it never bottlenecks
			// on its own.
			if st.stage != "pe" && busy > busiestUS {
				busiest, busiestUS = st.stage, busy
			}
		}
		cov := unionLen(attributed)
		fmt.Printf("attributed: %.2f us of %.2f us (%.1f%% of the window)\n", cov, window, pct(cov, window))
		if busiest != "" && busiestUS > 0 {
			fmt.Printf("capacity: bottleneck stage is %s at %.1f%% utilization; the window sustains about %.2fx this workload before %s saturates\n",
				busiest, pct(busiestUS, window), window/busiestUS, busiest)
		}
	}

	if len(serveReq) > 0 || len(serveFlush) > 0 {
		fmt.Printf("serve timeline (wall clock):\n")
		if len(serveReq) > 0 {
			fmt.Printf("  requests: %d spans, mean %.2f us, max %.2f us\n",
				len(serveReq), meanDur(serveReq), maxDur(serveReq))
		}
		if len(serveFlush) > 0 {
			fmt.Printf("  flushes:  %d spans, mean %.2f us, max %.2f us\n",
				len(serveFlush), meanDur(serveFlush), maxDur(serveFlush))
		}
	}
	return nil
}

func pct(part, whole float64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * part / whole
}

func meanDur(evs []reportEvent) float64 {
	sum := 0.0
	for _, ev := range evs {
		sum += ev.Dur
	}
	return sum / float64(len(evs))
}

func maxDur(evs []reportEvent) float64 {
	m := 0.0
	for _, ev := range evs {
		if ev.Dur > m {
			m = ev.Dur
		}
	}
	return m
}
