// Command fafnir-bench regenerates the tables and figures of the FAFNIR
// paper's evaluation from the simulators in this repository.
//
// Usage:
//
//	fafnir-bench                      # run every experiment
//	fafnir-bench -exp fig13           # run one experiment
//	fafnir-bench -format md           # Markdown tables instead of text
//	fafnir-bench -out results/        # one file per experiment
//	fafnir-bench -list                # list experiment IDs
//	fafnir-bench -exp fig12 -cpuprofile cpu.pprof   # profile one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"fafnir/internal/exp"
)

func main() {
	var (
		expID      = flag.String("exp", "", "experiment ID to run (default: all)")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		format     = flag.String("format", "text", "output format: text or md")
		outDir     = flag.String("out", "", "write one file per experiment into this directory")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "concurrent experiment runners (1 = serial)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // flush recently-freed objects out of the heap profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
	}

	render := func(rep *exp.Report) string {
		if *format == "md" {
			return rep.Markdown()
		}
		return rep.String()
	}
	ext := ".txt"
	if *format == "md" {
		ext = ".md"
	}

	var reports []*exp.Report
	if *expID != "" {
		rep, err := exp.Run(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		reports = []*exp.Report{rep}
	} else if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	} else {
		var err error
		reports, err = exp.RunAllParallel(*jobs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, rep := range reports {
			path := filepath.Join(*outDir, rep.ID+ext)
			if err := os.WriteFile(path, []byte(render(rep)), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
		}
		return
	}
	for _, rep := range reports {
		fmt.Println(render(rep))
	}
}
