// Command fafnir-serve runs the online embedding-lookup service: an HTTP
// front-end whose dynamic micro-batching coalescer merges concurrent
// requests into shared hardware batches, so cross-request duplicate indices
// are read from DRAM once.
//
// Examples:
//
//	fafnir-serve -addr :8080 -linger 500us
//	fafnir-serve -addr 127.0.0.1:0 -batch 32 -queue 512 -rows 4096
//	fafnir-serve -faults "rank=3@0;ecc=0.0005;seed=9"
//	fafnir-serve -shards 4                                    # fault-tolerant fleet router
//	fafnir-serve -shards 4 -fault-storm "shard=1@40000;seed=7"
//	fafnir-serve -shards 4 -radix 2                           # in-network shard combine (rnet)
//	fafnir-serve -fleets 2 -shards 4 -verify                  # multi-fleet federation, oracle-checked
//	fafnir-serve -debug-addr 127.0.0.1:6060   # adds /debug/pprof and /debug/vars
//
// Endpoints:
//
//	POST /v1/lookup   {"indices":[1,2,3]} or {"queries":[[1,2],[3]],"op":"sum"}
//	GET  /metrics     Prometheus text format
//	GET  /healthz     ok / draining
//	GET  /debug/slo   SLO flight recorder snapshot: per-lane burn rates plus
//	                  the K slowest and degraded requests (JSON)
//
// SIGINT/SIGTERM drains gracefully: the listener stops, queued and in-flight
// batches finish, then the process exits 0.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fafnir"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fafnir-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		linger    = flag.Duration("linger", 500*time.Microsecond, "how long a partial batch waits for co-travellers")
		batch     = flag.Int("batch", 32, "hardware batch capacity in queries")
		queue     = flag.Int("queue", 0, "admission queue bound in queries (0 = 16 x batch)")
		timeout   = flag.Duration("timeout", 2*time.Second, "default per-request deadline")
		ranks     = flag.Int("ranks", 32, "memory ranks")
		rows      = flag.Int("rows", 1<<17, "rows per embedding table (32 tables)")
		seed      = flag.Int64("seed", 1, "table-content seed")
		par       = flag.Int("j", 0, "simulator parallelism (0 = all cores)")
		faults    = flag.String("faults", "", `fault plan, e.g. "rank=3@0;ecc=0.001;seed=9"`)
		shards    = flag.Int("shards", 1, "shard count; >1 serves through the fault-tolerant fleet router")
		fleets    = flag.Int("fleets", 1, "fleet count; >1 serves a multi-fleet federation (implies the fleet router)")
		radix     = flag.Int("radix", 0, "rnet combine radix: >=2 reduces shard partials through the in-network switch tree, 0 keeps the host fold (federation mode defaults the cross-fleet tree to 2)")
		verify    = flag.Bool("verify", false, "federation mode: re-check every healthy batch bit-for-bit against the reference oracle")
		storm     = flag.String("fault-storm", "", `fleet fault plan, e.g. "shard=1@40000;flap=2@1-300000;storm=6@20000;seed=7" (implies the fleet router)`)
		cacheMB   = flag.Int("cache-mb", 0, "hot-embedding cache budget in MiB (0 disables; split per shard in fleet mode)")
		cacheSeed = flag.Uint64("cache-seed", 1, "cache CLOCK-eviction seed")
		qos       = flag.Bool("qos", false, "enable priority lanes: shed-low-first admission and deadline-aware scheduling")
		drainWait = flag.Duration("drain", 10*time.Second, "graceful drain budget on SIGTERM")
		debugAddr = flag.String("debug-addr", "", "optional debug listener serving /debug/pprof and /debug/vars (off when empty)")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		slo       = flag.String("slo", "", `per-lane latency objectives, e.g. "high=50ms,normal=250ms,low=1s" (empty keeps the defaults)`)
	)
	flag.Parse()

	logger, err := fafnir.NewLogger(os.Stdout, *logFormat)
	if err != nil {
		return err
	}
	objectives, err := parseSLO(*slo)
	if err != nil {
		return err
	}

	scfg := fafnir.ServeConfig{
		BatchCapacity:  *batch,
		Linger:         *linger,
		MaxQueued:      *queue,
		DefaultTimeout: *timeout,
		CacheBytes:     int64(*cacheMB) << 20,
		CacheSeed:      *cacheSeed,
		QoS:            *qos,
		SLOObjectives:  objectives,
	}

	var (
		srv       *fafnir.Server
		totalRows uint64
		topology  string
	)
	if *fleets > 1 || *shards > 1 || *storm != "" || *radix != 0 {
		// Fleet or federation mode: shards behind the health-checked
		// router, optionally stacked into a multi-fleet federation.
		// Per-shard rank/ecc clauses ride inside the fleet plan, so the
		// single-system -faults flag is rejected to keep one source of
		// truth.
		if *faults != "" {
			return fmt.Errorf("-faults is single-system only; in fleet mode put rank/ecc clauses in -fault-storm")
		}
		if *ranks%*shards != 0 {
			return fmt.Errorf("-ranks %d not divisible by -shards %d", *ranks, *shards)
		}
		fplan, err := fafnir.ParseFleetFaultPlan(*storm)
		if err != nil {
			return err
		}
		fcfg := fafnir.FleetConfig{
			Shards:        *shards,
			RanksPerShard: *ranks / *shards,
			BatchCapacity: *batch,
			Rows:          uint64(*rows) * 32, // mirror the 32-table single-system index space
			Seed:          *seed,
			Parallelism:   *par,
			Fleet:         fplan,
			Rnet:          fafnir.RnetConfig{Radix: *radix},
		}
		if *fleets > 1 {
			fd, err := fafnir.NewFederation(fafnir.FederationConfig{
				Fleets: *fleets,
				Fleet:  fcfg,
				Verify: *verify,
			})
			if err != nil {
				return err
			}
			srv, err = fafnir.NewFederationServer(fd, scfg)
			if err != nil {
				return err
			}
			totalRows = fd.TotalRows()
		} else {
			if *verify {
				return fmt.Errorf("-verify is federation-only; run with -fleets > 1")
			}
			fleet, err := fafnir.NewFleet(fcfg)
			if err != nil {
				return err
			}
			srv, err = fafnir.NewFleetServer(fleet, scfg)
			if err != nil {
				return err
			}
			totalRows = fleet.TotalRows()
		}
		topology = srv.Topology()
	} else {
		if *verify {
			return fmt.Errorf("-verify is federation-only; run with -fleets > 1")
		}
		plan, err := fafnir.ParseFaultPlan(*faults)
		if err != nil {
			return err
		}
		sys, err := fafnir.NewSystem(fafnir.SystemConfig{
			Ranks:         *ranks,
			RowsPerTable:  *rows,
			BatchCapacity: *batch,
			Seed:          *seed,
			Parallelism:   *par,
			Faults:        plan,
		})
		if err != nil {
			return err
		}
		srv, err = fafnir.NewServer(sys, scfg)
		if err != nil {
			return err
		}
		totalRows = sys.TotalRows()
		topology = fmt.Sprintf("system: %d ranks", *ranks)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The literal "listening on host:port" line is the startup handshake:
	// scripts (check.sh's smoke gate) parse the chosen port from it. The
	// logger's text mode renders it byte-identically to the old Printf.
	logger.Infof("listening on %s", ln.Addr())
	cacheInfo := "off"
	if *cacheMB > 0 {
		cacheInfo = fmt.Sprintf("%d MiB", *cacheMB)
	}
	qosInfo := "off"
	if *qos {
		qosInfo = "on"
	}
	logger.Infof("%s, %d vectors, batch capacity %d, linger %v, queue bound %d, cache %s, qos %s",
		topology, totalRows, *batch, *linger, srv.Coalescer().Config().MaxQueued, cacheInfo, qosInfo)

	// The debug listener is a separate socket so profiling endpoints never
	// share the service port: keep it bound to localhost or a firewalled
	// interface in production.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/debug/vars", expvar.Handler())
		logger.Infof("debug listening on %s", dln.Addr())
		go http.Serve(dln, dmux)
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	logger.Infof("draining...")
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := srv.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	m := srv.Metrics()
	logger.Infof("drained cleanly: %d queries in %d batches (coalesce factor %.2f, %.2f reads/query)",
		m.Queries.Value(), m.Batches.Value(), m.CoalesceFactor(), m.ReadsPerQuery())
	return nil
}

// parseSLO parses the -slo flag: comma-separated lane=duration clauses, e.g.
// "high=50ms,normal=250ms,low=1s". Lanes left out keep the serving layer's
// defaults; an empty flag keeps all of them.
func parseSLO(s string) (map[fafnir.Priority]time.Duration, error) {
	if s == "" {
		return nil, nil
	}
	m := make(map[fafnir.Priority]time.Duration)
	for _, clause := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(clause), "=")
		if !ok {
			return nil, fmt.Errorf(`bad -slo clause %q (want lane=duration, e.g. "high=50ms")`, clause)
		}
		pri, err := fafnir.ParsePriority(strings.TrimSpace(k))
		if err != nil {
			return nil, fmt.Errorf("bad -slo lane in %q: %w", clause, err)
		}
		d, err := time.ParseDuration(strings.TrimSpace(v))
		if err != nil {
			return nil, fmt.Errorf("bad -slo duration in %q: %w", clause, err)
		}
		if d <= 0 {
			return nil, fmt.Errorf("bad -slo duration in %q: must be positive", clause)
		}
		m[pri] = d
	}
	return m, nil
}
