// Command fafnir-sim runs one embedding-lookup or SpMV simulation with
// configurable parameters and prints the timing breakdown, memory-system
// statistics, and functional verification result.
//
// Examples:
//
//	fafnir-sim -mode lookup -engine fafnir -batch 32 -q 16 -zipf 1.3
//	fafnir-sim -mode lookup -engine recnmp -batch 16
//	fafnir-sim -mode lookup -engine interactive -batch 4
//	fafnir-sim -mode lookup -faults "rank=3@0;ecc=0.001;seed=9"
//	fafnir-sim -mode spmv -engine twostep -matrix graph -size 8192
//	fafnir-sim -mode graph -algo pagerank -size 4096
//	fafnir-sim -mode solver -algo cg -size 2048
package main

import (
	"flag"
	"fmt"
	"os"

	"fafnir/internal/cpu"
	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	"fafnir/internal/fafnir"
	"fafnir/internal/fault"
	"fafnir/internal/graph"
	"fafnir/internal/memmap"
	"fafnir/internal/recnmp"
	"fafnir/internal/sim"
	"fafnir/internal/solver"
	"fafnir/internal/sparse"
	"fafnir/internal/spmv"
	"fafnir/internal/telemetry"
	"fafnir/internal/tensor"
	"fafnir/internal/tensordimm"
	"fafnir/internal/twostep"
)

func main() {
	var (
		mode   = flag.String("mode", "lookup", "lookup, spmv, graph, or solver")
		engine = flag.String("engine", "fafnir", "lookup: fafnir|interactive|recnmp|tensordimm|cpu; spmv: fafnir|twostep")
		algo   = flag.String("algo", "pagerank", "graph: bfs|pagerank|cc; solver: jacobi|cg")
		batch  = flag.Int("batch", 32, "lookup: queries per batch")
		q      = flag.Int("q", 16, "lookup: indices per query")
		rows   = flag.Int("rows", 1<<17, "lookup: rows per table (32 tables)")
		zipf   = flag.Float64("zipf", 1.3, "lookup: Zipf skew (<=1 for uniform)")
		dedup  = flag.Bool("dedup", true, "lookup (fafnir): eliminate redundant accesses")
		seed   = flag.Int64("seed", 1, "workload seed")
		matrix = flag.String("matrix", "banded", "spmv: banded|graph|uniform")
		size     = flag.Int("size", 8192, "spmv: matrix dimension")
		faults    = flag.String("faults", "", `lookup (fafnir): fault plan, e.g. "rank=3@0;ecc=0.001;stall=5+200;seed=9"`)
		traceOut  = flag.String("trace-out", "", "lookup: write a Chrome trace-event JSON file of the run (load at ui.perfetto.dev)")
		logFormat = flag.String("log-format", "text", "summary output format: text or json")
	)
	flag.Parse()

	l, err := telemetry.NewLogger(os.Stdout, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fafnir-sim:", err)
		os.Exit(1)
	}
	logger = l
	if *traceOut != "" && *mode != "lookup" {
		err = fmt.Errorf("-trace-out is only supported in lookup mode, not %q", *mode)
		fmt.Fprintln(os.Stderr, "fafnir-sim:", err)
		os.Exit(1)
	}
	switch *mode {
	case "lookup":
		err = runLookup(*engine, *batch, *q, *rows, *zipf, *dedup, *seed, *faults, *traceOut)
	case "spmv":
		err = runSpMV(*engine, *matrix, *size, *seed)
	case "graph":
		err = runGraph(*algo, *size, *seed)
	case "solver":
		err = runSolver(*algo, *size, *seed)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fafnir-sim:", err)
		os.Exit(1)
	}
}

// logger carries the -log-format choice to every summary line; the text
// format renders each line byte-identically to the fmt.Printf output it
// replaced, so scripted consumers keep working.
var logger *telemetry.Logger

func logf(format string, args ...any) { logger.Infof(format, args...) }

func usSeconds(c sim.Cycle) float64 { return sim.Seconds(c, 200) * 1e6 }

func runLookup(engine string, batchN, q, rowsPer int, zipf float64, dedup bool, seed int64, faults, traceOut string) error {
	plan, err := fault.Parse(faults)
	if err != nil {
		return err
	}
	if !plan.Empty() && engine != "fafnir" {
		return fmt.Errorf("-faults is only supported by the fafnir engine, not %q", engine)
	}
	mcfg := dram.DDR4()
	layout := memmap.Uniform(mcfg, 512, 32, rowsPer)
	store := embedding.MustStore(layout.TotalRows(), 128, uint64(seed))
	mem := dram.MustSystem(mcfg)

	// Tracing captures per-bank DRAM activity for every engine; the fafnir
	// engine additionally emits PE pipeline lanes from its timed loop.
	var tr *telemetry.Trace
	if traceOut != "" {
		tr = telemetry.NewTrace()
		mem.AttachTracer(tr)
	}

	gcfg := embedding.GeneratorConfig{
		NumQueries: batchN, QuerySize: q, Rows: layout.TotalRows(), Seed: seed,
	}
	if zipf > 1 {
		gcfg.Dist = embedding.Zipf
		gcfg.ZipfS = zipf
	}
	gen, err := embedding.NewGenerator(gcfg)
	if err != nil {
		return err
	}
	b := gen.Batch(tensor.OpSum)
	golden := b.MustGolden(store)

	logf("embedding lookup: engine=%s batch=%d q=%d dedup=%v", engine, batchN, q, dedup)
	switch engine {
	case "interactive":
		e, err := fafnir.NewEngine(fafnir.Default())
		if err != nil {
			return err
		}
		res, err := e.InteractiveLookup(store, layout, mem, b)
		if err != nil {
			return err
		}
		logf("  memory   %8.2f us  (%d reads, no dedup in interactive mode)", usSeconds(res.MemCycles), res.MemoryReads)
		logf("  compute  %8.2f us  (comparison-free stage)", usSeconds(res.ComputeCycles))
		logf("  total    %8.2f us  (%d queries served one at a time)", usSeconds(res.TotalCycles), res.HWBatches)
		if i := fafnir.VerifyAgainstGolden(res.Outputs, golden, 1e-3); i >= 0 {
			return fmt.Errorf("query %d mismatches golden", i)
		}
	case "fafnir":
		fcfg := fafnir.Default()
		fcfg.BatchCapacity = batchN
		e, err := fafnir.NewEngine(fcfg)
		if err != nil {
			return err
		}
		if tr != nil {
			e.AttachTracer(tr)
		}
		var inj *fault.Injector
		if !plan.Empty() {
			if inj, err = fault.NewInjector(plan, mcfg.TotalRanks()); err != nil {
				return err
			}
		}
		res, err := e.TimedLookupFaulted(store, layout, mem, b, dedup, inj)
		if err != nil {
			return err
		}
		logf("  memory   %8.2f us  (%d reads, %d bytes)", usSeconds(res.MemCycles), res.MemoryReads, res.BytesRead)
		logf("  compute  %8.2f us  (tree of %d PEs, max occupancy %d)",
			usSeconds(res.ComputeCycles), e.Tree().NumPEs(), res.MaxOccupancy)
		logf("  transfer %8.2f us", usSeconds(res.TransferCycles))
		logf("  total    %8.2f us", usSeconds(res.TotalCycles))
		logf("  PE actions: %d reduces, %d forwards, %d merged duplicates",
			res.PETotals.Reduces, res.PETotals.Forwards, res.PETotals.MergedDuplicates)
		if d := res.Degraded; d != nil {
			logf("  degraded: ranks dark %v, %d reads remapped (%d queries), %d retries costing %d mem cycles",
				d.FailedRanks, d.RemappedReads, d.RemappedQueries, d.Retries, d.RetryCycles)
		}
		if i := fafnir.VerifyAgainstGolden(res.Outputs, golden, 1e-3); i >= 0 {
			return fmt.Errorf("query %d mismatches golden", i)
		}
	case "recnmp":
		e, err := recnmp.NewEngine(recnmp.Default())
		if err != nil {
			return err
		}
		res, err := e.TimedLookup(store, layout, mem, b)
		if err != nil {
			return err
		}
		logf("  memory    %8.2f us  (%d reads, %d cache hits)", usSeconds(res.MemCycles), res.MemoryReads, res.CacheHits)
		logf("  NDP       %8.2f us  (%d reduced at NDP, %d forwarded raw, NDP fraction %.0f%%)",
			usSeconds(res.NDPComputeCycles), res.ReducedAtNDP, res.ForwardedRaw, 100*res.NDPFraction())
		logf("  host      %8.2f us", usSeconds(res.HostComputeCycles))
		logf("  total     %8.2f us", usSeconds(res.TotalCycles))
	case "tensordimm":
		e, err := tensordimm.NewEngine(tensordimm.Default())
		if err != nil {
			return err
		}
		res, err := e.TimedLookup(store, mem, b)
		if err != nil {
			return err
		}
		logf("  memory   %8.2f us  (%d slice reads)", usSeconds(res.MemCycles), res.MemoryReads)
		logf("  compute  %8.2f us", usSeconds(res.ComputeCycles))
		logf("  total    %8.2f us", usSeconds(res.TotalCycles))
	case "cpu":
		e, err := cpu.NewEngine(cpu.Default())
		if err != nil {
			return err
		}
		res, err := e.TimedLookup(store, layout, mem, b)
		if err != nil {
			return err
		}
		logf("  memory   %8.2f us  (%d reads, %d bytes to host)", usSeconds(res.MemCycles), res.MemoryReads, res.BytesToHost)
		logf("  compute  %8.2f us", usSeconds(res.ComputeCycles))
		logf("  total    %8.2f us", usSeconds(res.TotalCycles))
	default:
		return fmt.Errorf("unknown lookup engine %q", engine)
	}
	logf("  row buffer: %d hits, %d misses, %d conflicts",
		mem.Stats().Counter("dram.row_hits"),
		mem.Stats().Counter("dram.row_misses"),
		mem.Stats().Counter("dram.row_conflicts"))
	logf("  functional result verified against golden reference")
	if tr != nil {
		if err := tr.WriteChromeFile(traceOut); err != nil {
			return err
		}
		logf("  trace: %d events written to %s (open at ui.perfetto.dev)", tr.Len(), traceOut)
	}
	return nil
}

// fafnirExecutor wires the Fafnir SpMV engine as a solver/graph executor.
func fafnirExecutor() (solver.SpMV, error) {
	eng, err := spmv.NewEngine(spmv.Default())
	if err != nil {
		return nil, err
	}
	return func(m *sparse.LIL, x tensor.Vector) (tensor.Vector, sim.Cycle, error) {
		res, err := eng.Multiply(m, x, dram.MustSystem(dram.DDR4()))
		if err != nil {
			return nil, 0, err
		}
		return res.Y, res.TotalCycles, nil
	}, nil
}

func runGraph(algo string, size int, seed int64) error {
	adj := sparse.PowerLawGraph(size, 8, seed)
	g, err := graph.New(adj)
	if err != nil {
		return err
	}
	mul, err := fafnirExecutor()
	if err != nil {
		return err
	}
	logf("graph %s: %d nodes, %d edges (power-law), SpMVs on the Fafnir tree", algo, g.Nodes(), g.Edges())
	switch algo {
	case "bfs":
		res, err := g.BFS(0, mul)
		if err != nil {
			return err
		}
		logf("  reached %d vertices in %d frontiers (%.1f us on Fafnir)",
			res.Reached, res.Frontiers, usSeconds(res.SpMVCycles))
	case "pagerank":
		res, err := g.PageRank(0.85, 1e-4, 100, mul)
		if err != nil {
			return err
		}
		logf("  converged=%v after %d iterations, delta %.2e (%.1f us on Fafnir)",
			res.Converged, res.Iterations, res.Delta, usSeconds(res.SpMVCycles))
	case "cc":
		res, err := g.ConnectedComponents(mul)
		if err != nil {
			return err
		}
		logf("  %d components after %d rounds (%.1f us on Fafnir)",
			res.Count, res.Iterations, usSeconds(res.SpMVCycles))
	default:
		return fmt.Errorf("unknown graph algorithm %q", algo)
	}
	return nil
}

func runSolver(algo string, size int, seed int64) error {
	a := sparse.SymmetricDiagDominant(size, 2, seed)
	xTrue := sparse.DenseVector(size, seed+1)
	b, err := a.MulVec(xTrue)
	if err != nil {
		return err
	}
	mul, err := fafnirExecutor()
	if err != nil {
		return err
	}
	opts := solver.Options{MaxIterations: 500, Tolerance: 1e-2}
	logf("solver %s: %dx%d SPD system (nnz %d), SpMVs on the Fafnir tree", algo, size, size, a.NNZ())
	var res *solver.Result
	switch algo {
	case "jacobi":
		res, err = solver.Jacobi(a, b, mul, opts)
	case "cg":
		res, err = solver.CG(a, b, mul, opts)
	default:
		return fmt.Errorf("unknown solver %q", algo)
	}
	if err != nil {
		return err
	}
	logf("  converged=%v after %d iterations, residual %.3g (%d SpMVs, %.1f us on Fafnir)",
		res.Converged, res.Iterations, res.Residual, res.SpMVCount, usSeconds(res.SpMVCycles))
	return nil
}

func runSpMV(engine, matrix string, size int, seed int64) error {
	var m *sparse.LIL
	switch matrix {
	case "banded":
		m = sparse.Banded(size, 32, seed)
	case "graph":
		m = sparse.PowerLawGraph(size, 16, seed)
	case "uniform":
		m = sparse.RandomUniform(size, size, 2e-4, seed)
	default:
		return fmt.Errorf("unknown matrix kind %q", matrix)
	}
	x := sparse.DenseVector(m.Cols, seed+1)
	want, err := m.MulVec(x)
	if err != nil {
		return err
	}
	mem := dram.MustSystem(dram.DDR4())

	logf("SpMV: engine=%s matrix=%s %dx%d nnz=%d density=%.2e",
		engine, matrix, m.Rows, m.Cols, m.NNZ(), m.Density())
	switch engine {
	case "fafnir":
		e, err := spmv.NewEngine(spmv.Default())
		if err != nil {
			return err
		}
		res, err := e.Multiply(m, x, mem)
		if err != nil {
			return err
		}
		logf("  plan: %s", res.Plan)
		logf("  multiply %8.2f us", usSeconds(res.MultiplyCycles))
		logf("  merge    %8.2f us", usSeconds(res.MergeCycles))
		logf("  total    %8.2f us  (%d elements streamed)", usSeconds(res.TotalCycles), res.ElementsStreamed)
		if !res.Y.Equal(want) {
			return fmt.Errorf("result mismatches reference SpMV")
		}
	case "twostep":
		e, err := twostep.NewEngine(twostep.Default())
		if err != nil {
			return err
		}
		res, err := e.Multiply(m, x, mem)
		if err != nil {
			return err
		}
		logf("  step 1   %8.2f us", usSeconds(res.Step1Cycles))
		logf("  merge    %8.2f us", usSeconds(res.MergeCycles))
		logf("  total    %8.2f us  (%d elements streamed)", usSeconds(res.TotalCycles), res.ElementsStreamed)
		if !res.Y.Equal(want) {
			return fmt.Errorf("result mismatches reference SpMV")
		}
	default:
		return fmt.Errorf("unknown spmv engine %q", engine)
	}
	logf("  functional result verified against reference SpMV")
	return nil
}
