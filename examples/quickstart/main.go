// Quickstart: build the paper's default system (32-rank DDR4, 31-PE Fafnir
// tree), draw a batch of embedding-lookup queries, and run it with full
// timing. Outputs are verified against the golden software reference
// automatically.
package main

import (
	"fmt"
	"log"

	"fafnir"
)

func main() {
	sys, err := fafnir.NewSystem(fafnir.SystemConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system: %d embedding vectors across 32 tables, %d-PE reduction tree\n",
		sys.TotalRows(), sys.NumPEs())

	batch, err := sys.GenerateBatch(32, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch: %d queries x %d indices, %.0f%% unique\n",
		batch.NumQueries(), batch.MaxQuerySize(), 100*batch.UniqueFraction())

	res, err := sys.Lookup(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lookup: %d DRAM reads (%d bytes), %d cycles = %.2f us\n",
		res.MemoryReads, res.BytesRead, res.TotalCycles,
		fafnir.CyclesToSeconds(uint64(res.TotalCycles))*1e6)
	fmt.Printf("tree:   %d reduces, %d forwards, %d merged duplicates, max PE occupancy %d\n",
		res.PETotals.Reduces, res.PETotals.Forwards,
		res.PETotals.MergedDuplicates, res.MaxOccupancy)
	fmt.Printf("query 0 output (first 4 elements): %v\n", res.Outputs[0][:4])
}
