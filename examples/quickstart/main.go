// Quickstart: build the paper's default system (32-rank DDR4, 31-PE Fafnir
// tree), draw a batch of embedding-lookup queries, and run it with full
// timing. Outputs are verified against the golden software reference
// automatically.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"fafnir"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	sys, err := fafnir.NewSystem(fafnir.SystemConfig{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "system: %d embedding vectors across 32 tables, %d-PE reduction tree\n",
		sys.TotalRows(), sys.NumPEs())

	batch, err := sys.GenerateBatch(32, 1)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "batch: %d queries x %d indices, %.0f%% unique\n",
		batch.NumQueries(), batch.MaxQuerySize(), 100*batch.UniqueFraction())

	res, err := sys.Lookup(batch)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "lookup: %d DRAM reads (%d bytes), %d cycles = %.2f us\n",
		res.MemoryReads, res.BytesRead, res.TotalCycles,
		fafnir.CyclesToSeconds(uint64(res.TotalCycles))*1e6)
	fmt.Fprintf(w, "tree:   %d reduces, %d forwards, %d merged duplicates, max PE occupancy %d\n",
		res.PETotals.Reduces, res.PETotals.Forwards,
		res.PETotals.MergedDuplicates, res.MaxOccupancy)
	fmt.Fprintf(w, "query 0 output (first 4 elements): %v\n", res.Outputs[0][:4])
	return nil
}
