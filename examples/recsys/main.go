// Recsys: an end-to-end recommendation-inference scenario (the Fig. 12
// setting). One inference gathers and pools a large batch of embedding
// queries, feeds the pooled vectors through a DLRM-style top model (feature
// interaction + MLP) to produce real click probabilities, and compares the
// no-NDP baseline, RecNMP, and Fafnir on the same DDR4 system.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"fafnir/internal/cpu"
	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	core "fafnir/internal/fafnir"
	"fafnir/internal/memmap"
	"fafnir/internal/mlp"
	"fafnir/internal/recnmp"
	"fafnir/internal/sim"
	"fafnir/internal/tensor"
)

const queriesPerInference = 1024

func us(c sim.Cycle) float64 { return sim.Seconds(c, 200) * 1e6 }

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	mcfg := dram.DDR4()
	layout := memmap.Uniform(mcfg, 512, 32, 1<<17)
	store := embedding.MustStore(layout.TotalRows(), 128, 7)

	gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
		NumQueries: queriesPerInference,
		QuerySize:  16,
		Rows:       layout.TotalRows(),
		Dist:       embedding.Zipf,
		ZipfS:      1.3,
		Seed:       42,
	})
	if err != nil {
		return err
	}
	batch := gen.Batch(tensor.OpSum)
	host := cpu.Default()

	fmt.Fprintf(w, "recommendation inference: %d pooled lookups + %.1f ms FC layers\n\n",
		queriesPerInference, host.FCSeconds*1e3)

	// Baseline: every vector to the CPU.
	base, err := cpu.NewEngine(host)
	if err != nil {
		return err
	}
	bres, err := base.TimedLookup(store, layout, dram.MustSystem(mcfg), batch)
	if err != nil {
		return err
	}
	report(w, "Baseline (no NDP)", us(bres.TotalCycles), host)

	// RecNMP: in-DIMM reduction when spatial locality allows.
	rec, err := recnmp.NewEngine(recnmp.Default())
	if err != nil {
		return err
	}
	rres, err := rec.TimedLookup(store, layout, dram.MustSystem(mcfg), batch)
	if err != nil {
		return err
	}
	report(w, "RecNMP", us(rres.TotalCycles), host)
	fmt.Fprintf(w, "    (NDP handled %.0f%% of pooling ops; %d vectors forwarded raw)\n",
		100*rres.NDPFraction(), rres.ForwardedRaw)

	// Fafnir: full reduction in the tree, dedup on.
	fcfg := core.Default()
	eng, err := core.NewEngine(fcfg)
	if err != nil {
		return err
	}
	fres, err := eng.TimedLookup(store, layout, dram.MustSystem(mcfg), batch, true)
	if err != nil {
		return err
	}
	report(w, "Fafnir", us(fres.TotalCycles), host)
	fmt.Fprintf(w, "    (dedup read %d unique vectors instead of %d)\n",
		fres.MemoryReads, batch.TotalAccesses())

	// Cross-check: all engines agree with the golden reference.
	golden := batch.MustGolden(store)
	for name, outs := range map[string][]tensor.Vector{
		"baseline": bres.Outputs, "recnmp": rres.Outputs, "fafnir": fres.Outputs,
	} {
		for i := range golden {
			if !outs[i].ApproxEqual(golden[i], 1e-3) {
				return fmt.Errorf("%s: query %d mismatches golden", name, i)
			}
		}
	}
	fmt.Fprintln(w, "\nall three engines verified against the golden reference")

	// Feed the pooled vectors through the DLRM-style top model: each user
	// inference consumes 4 pooled slots and yields a click probability.
	const slots = 4
	rec4, err := mlp.NewRecommender(128, slots, []int{256, 64}, 99)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ntop model: %d FLOPs/inference (%.1f us on a 10 GFLOP/s host)\n",
		rec4.FLOPs(), sim.Seconds(rec4.HostLatency(10), 200)*1e6)
	fmt.Fprintln(w, "sample click probabilities:")
	for u := 0; u < 3; u++ {
		pooled := fres.Outputs[u*slots : (u+1)*slots]
		// Normalize pooled sums into the model's working range.
		scaled := make([]tensor.Vector, slots)
		for i, v := range pooled {
			scaled[i] = v.Clone().Scale(1.0 / 64)
		}
		score, err := rec4.Score(scaled)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  user %d: %.4f\n", u, score)
	}
	return nil
}

func report(w io.Writer, name string, lookupUS float64, host cpu.Config) {
	total := host.InferenceSeconds(lookupUS * 1e-6)
	fmt.Fprintf(w, "%-18s lookup %8.1f us   end-to-end %.3f ms\n", name, lookupUS, total*1e3)
}
