package main

import (
	"bytes"
	"testing"
)

// TestRunSmoke executes the example's whole main path twice and checks it
// succeeds, prints something, and prints the same thing both times — the
// examples double as deterministic end-to-end fixtures.
func TestRunSmoke(t *testing.T) {
	var first, second bytes.Buffer
	if err := run(&first); err != nil {
		t.Fatal(err)
	}
	if first.Len() == 0 {
		t.Fatal("example produced no output")
	}
	if err := run(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("example output is not deterministic across runs")
	}
}
