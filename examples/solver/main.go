// Solver: a discretized differential-equation solve (the paper's "matrix
// inversion and differential-equation solvers" domain) running its sparse
// matrix-vector products on the Fafnir tree. A symmetric positive-definite
// banded system — the shape a 1-D diffusion stencil produces — is solved
// with Jacobi and with conjugate gradient, and the accelerator cycles each
// method consumed are reported.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"fafnir/internal/dram"
	"fafnir/internal/sim"
	"fafnir/internal/solver"
	"fafnir/internal/sparse"
	"fafnir/internal/spmv"
	"fafnir/internal/tensor"
)

const n = 2048

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// The operator: symmetric, strictly diagonally dominant, banded.
	a := sparse.SymmetricDiagDominant(n, 2, 13)
	xTrue := sparse.DenseVector(n, 14)
	b, err := a.MulVec(xTrue)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "system: %dx%d, nnz=%d (banded SPD stencil)\n", n, n, a.NNZ())

	// Every SpMV goes through the Fafnir tree simulator.
	eng, err := spmv.NewEngine(spmv.Default())
	if err != nil {
		return err
	}
	onFafnir := func(m *sparse.LIL, x tensor.Vector) (tensor.Vector, sim.Cycle, error) {
		res, err := eng.Multiply(m, x, dram.MustSystem(dram.DDR4()))
		if err != nil {
			return nil, 0, err
		}
		return res.Y, res.TotalCycles, nil
	}

	opts := solver.Options{MaxIterations: 400, Tolerance: 1e-2}

	jac, err := solver.Jacobi(a, b, onFafnir, opts)
	if err != nil {
		return err
	}
	report(w, "Jacobi", jac, xTrue)

	cg, err := solver.CG(a, b, onFafnir, opts)
	if err != nil {
		return err
	}
	report(w, "CG", cg, xTrue)

	fmt.Fprintf(w, "\nCG needed %.1fx fewer SpMVs and %.1fx fewer accelerator cycles\n",
		float64(jac.SpMVCount)/float64(cg.SpMVCount),
		float64(jac.SpMVCycles)/float64(cg.SpMVCycles))
	return nil
}

func report(w io.Writer, name string, r *solver.Result, xTrue tensor.Vector) {
	maxErr := 0.0
	for i := range xTrue {
		d := float64(r.X[i] - xTrue[i])
		if d < 0 {
			d = -d
		}
		if d > maxErr {
			maxErr = d
		}
	}
	fmt.Fprintf(w, "%-7s converged=%v iterations=%d residual=%.3g maxErr=%.3g  (%d SpMVs, %d cycles = %.1f us on Fafnir)\n",
		name, r.Converged, r.Iterations, r.Residual, maxErr,
		r.SpMVCount, r.SpMVCycles, sim.Seconds(r.SpMVCycles, 200)*1e6)
}
