// Dedup: the paper's Fig. 6 worked example, traced level by level. Four
// queries over eight embedding tables are compiled into unique memory
// accesses with headers; the example prints each PE's inputs and outputs so
// the reduce/forward/merge decisions — including the same-rank pair (44, 94)
// in table 4 and the shared (32, 83) value of queries a and b — are visible.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"fafnir/internal/batch"
	"fafnir/internal/embedding"
	core "fafnir/internal/fafnir"
	"fafnir/internal/header"
	"fafnir/internal/tensor"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// Fig. 6 indices: "50" is row 5 of table 0; the table digit selects the
	// rank.
	queries := []embedding.Query{
		{Indices: header.NewIndexSet(11, 44, 32, 83, 77)}, // a
		{Indices: header.NewIndexSet(50, 32, 83, 26)},     // b
		{Indices: header.NewIndexSet(50, 44, 11, 94, 26)}, // c
		{Indices: header.NewIndexSet(83, 77)},             // d
	}
	b := embedding.Batch{Queries: queries, Op: tensor.OpSum}
	names := []string{"a", "b", "c", "d"}
	for i, q := range queries {
		fmt.Fprintf(w, "query %s: %v\n", names[i], q.Indices)
	}

	plan := batch.Build(b, true)
	fmt.Fprintf(w, "\nhost batch rearrangement: %d raw accesses -> %d unique (%.0f%% saved)\n",
		plan.TotalAccesses(), plan.NumAccesses(), 100*plan.Savings())
	for _, acc := range plan.Accesses {
		fmt.Fprintf(w, "  read %2d  header %s\n", acc.Index, acc.LeafHeader())
	}

	// Build an 8-rank tree (tables 0..7 -> ranks 0..7, one table per rank).
	cfg := core.Default()
	cfg.NumRanks = 8
	cfg.BatchCapacity = 4
	cfg.VectorDim = 4
	tree, err := core.NewTree(cfg)
	if err != nil {
		return err
	}
	store := embedding.MustStore(100, 4, 77)

	// Place each access's entry at rank = table digit.
	rankIn := map[int][]core.Entry{}
	for _, acc := range plan.Accesses {
		r := int(acc.Index) % 10
		rankIn[r] = append(rankIn[r], core.Entry{
			Value:  store.MustVector(acc.Index),
			Header: acc.LeafHeader(),
		})
	}

	// Evaluate the tree bottom-up, printing every PE's traffic.
	fmt.Fprintln(w, "\ntree processing (reduce/forward decisions per PE):")
	outputs := map[*core.PENode][]core.Entry{}
	var eval func(n *core.PENode) ([]core.Entry, error)
	eval = func(n *core.PENode) ([]core.Entry, error) {
		if out, ok := outputs[n]; ok {
			return out, nil
		}
		var inA, inB []core.Entry
		if n.IsLeaf() {
			for _, r := range n.RanksA {
				inA = append(inA, rankIn[r]...)
			}
			for _, r := range n.RanksB {
				inB = append(inB, rankIn[r]...)
			}
			var err error
			inA, _, err = core.SelfMerge(b.Op, inA)
			if err != nil {
				return nil, err
			}
			inB, _, err = core.SelfMerge(b.Op, inB)
			if err != nil {
				return nil, err
			}
		} else {
			var err error
			inA, err = eval(n.Left)
			if err != nil {
				return nil, err
			}
			if n.Right != nil {
				inB, err = eval(n.Right)
				if err != nil {
					return nil, err
				}
			}
		}
		out, st, err := core.ProcessPE(b.Op, inA, inB)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "\nPE %d (level %d): %d reduces, %d forwards, %d merged\n",
			n.ID, n.Level, st.Reduces, st.Forwards, st.MergedDuplicates)
		for _, e := range out {
			fmt.Fprintf(w, "   out %s\n", e.Header)
		}
		outputs[n] = out
		return out, nil
	}
	rootOut, err := eval(tree.Root())
	if err != nil {
		return err
	}

	// Resolve the root outputs back to queries and verify.
	fmt.Fprintln(w, "\nroot outputs resolved to queries:")
	golden := b.MustGolden(store)
	for _, out := range rootOut {
		if !out.Header.Complete() {
			continue
		}
		for _, qi := range plan.QueriesFor(out.Header.Indices) {
			ok := out.Value.Equal(golden[qi])
			fmt.Fprintf(w, "  query %s <- %v  (matches golden: %v)\n", names[qi], out.Header.Indices, ok)
			if !ok {
				return fmt.Errorf("query %s mismatch", names[qi])
			}
		}
	}
	return nil
}
