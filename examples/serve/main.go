// Serve: start the online lookup service on a random port, fire three
// concurrent user requests whose queries overlap, and show the dynamic
// micro-batching coalescer merging them into one hardware batch — the
// cross-request duplicate indices are read from DRAM once, and every
// response is bit-identical to running the same queries directly.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"fafnir"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// wire mirrors the server's lookup response shape.
type wire struct {
	Outputs [][]float32 `json:"outputs"`
	Batch   struct {
		Queries           int `json:"queries"`
		CoalescedRequests int `json:"coalesced_requests"`
		DRAMReads         int `json:"dram_reads"`
		NaiveReads        int `json:"naive_reads"`
	} `json:"batch"`
}

func run(w io.Writer) error {
	sys, err := fafnir.NewSystem(fafnir.SystemConfig{RowsPerTable: 4096})
	if err != nil {
		return err
	}
	// Capacity 3 with a long linger: the third concurrent request fills the
	// batch and triggers the flush, so the run is deterministic.
	srv, err := fafnir.NewServer(sys, fafnir.ServeConfig{
		BatchCapacity: 3,
		Linger:        time.Minute,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()

	// Three users looking up overlapping sets of hot embedding rows.
	users := [][]uint64{
		{1, 2, 3, 4},
		{2, 3, 4, 5},
		{3, 4, 5, 6},
	}
	fmt.Fprintf(w, "three concurrent users, 4 indices each, %d distinct rows overall\n", 6)

	responses := make([]wire, len(users))
	errs := make([]error, len(users))
	var wg sync.WaitGroup
	for i, indices := range users {
		wg.Add(1)
		go func(i int, indices []uint64) {
			defer wg.Done()
			responses[i], errs[i] = lookup(base, indices)
		}(i, indices)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Stop the service before touching the system directly.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if err := srv.Drain(ctx); err != nil {
		return err
	}

	b := responses[0].Batch
	if b.CoalescedRequests < 2 {
		return fmt.Errorf("expected coalescing, got %d requests in the batch", b.CoalescedRequests)
	}
	fmt.Fprintf(w, "coalesced: %d requests in one batch of %d queries\n", b.CoalescedRequests, b.Queries)
	fmt.Fprintf(w, "DRAM reads: %d (naive would read %d; cross-request dedup saved %d)\n",
		b.DRAMReads, b.NaiveReads, b.NaiveReads-b.DRAMReads)

	// Each served output must be bit-identical to a direct lookup.
	var queries []fafnir.Query
	for _, indices := range users {
		idx32 := make([]uint32, len(indices))
		for i, v := range indices {
			idx32[i] = uint32(v)
		}
		queries = append(queries, fafnir.NewQuery(idx32...))
	}
	direct, err := sys.Lookup(fafnir.NewBatch(fafnir.OpSum, queries...))
	if err != nil {
		return err
	}
	for i := range users {
		if len(responses[i].Outputs) != 1 {
			return fmt.Errorf("user %d: got %d outputs, want 1", i, len(responses[i].Outputs))
		}
		got := fafnir.Vector(responses[i].Outputs[0])
		if !got.Equal(direct.Outputs[i]) {
			return fmt.Errorf("user %d: served output differs from direct lookup", i)
		}
	}
	fmt.Fprintf(w, "all %d served outputs bit-identical to direct sys.Lookup\n", len(users))

	m := srv.Metrics()
	fmt.Fprintf(w, "metrics: %d queries in %d batch(es), %.2f reads/query\n",
		m.Queries.Value(), m.Batches.Value(), m.ReadsPerQuery())
	return nil
}

func lookup(base string, indices []uint64) (wire, error) {
	payload, err := json.Marshal(map[string]any{"indices": indices})
	if err != nil {
		return wire{}, err
	}
	resp, err := http.Post(base+"/v1/lookup", "application/json", bytes.NewReader(payload))
	if err != nil {
		return wire{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return wire{}, fmt.Errorf("lookup: %s: %s", resp.Status, body)
	}
	var out wire
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return wire{}, err
	}
	return out, nil
}
