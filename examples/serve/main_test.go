package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke executes the example's whole main path twice and checks it
// succeeds, prints something, and prints the same thing both times — the
// examples double as deterministic end-to-end fixtures. run itself fails
// unless coalescing occurred and every served output is bit-identical to a
// direct sys.Lookup of the same queries.
func TestRunSmoke(t *testing.T) {
	var first, second bytes.Buffer
	if err := run(&first); err != nil {
		t.Fatal(err)
	}
	if first.Len() == 0 {
		t.Fatal("example produced no output")
	}
	if !strings.Contains(first.String(), "coalesced: 3 requests") {
		t.Errorf("example did not report full coalescing:\n%s", first.String())
	}
	if !strings.Contains(first.String(), "bit-identical to direct sys.Lookup") {
		t.Errorf("example did not verify served outputs:\n%s", first.String())
	}
	if err := run(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("example output is not deterministic across runs:\n--- first\n%s--- second\n%s",
			first.String(), second.String())
	}
}
