// SpMV: PageRank-style power iteration on a synthetic power-law graph,
// with every iteration's sparse matrix-vector product executed on the
// Fafnir tree (vectorized mode, Section IV-D) and, for comparison, on the
// Two-Step NDP accelerator. Demonstrates the "other sparse problems"
// genericity claim: the same 31-PE hardware that pools embeddings runs
// graph analytics.
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"fafnir"
)

const (
	nodes      = 4096
	iterations = 5
	damping    = 0.85
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	sys, err := fafnir.NewSystem(fafnir.SystemConfig{RowsPerTable: 1024})
	if err != nil {
		return err
	}
	graph := fafnir.GraphMatrix(nodes, 8, 11)
	fmt.Fprintf(w, "power-law graph: %d nodes, %d edges (density %.2e)\n",
		nodes, graph.NNZ(), graph.Density())

	// Column-normalize into a transition matrix (still LIL).
	normalizeColumns(graph)

	rank := make(fafnir.Vector, nodes)
	for i := range rank {
		rank[i] = 1.0 / nodes
	}

	var fafCycles, tsCycles uint64
	for it := 0; it < iterations; it++ {
		sys.ResetMemory()
		fres, err := sys.SpMV(graph, rank)
		if err != nil {
			return err
		}
		fafCycles += uint64(fres.TotalCycles)

		sys.ResetMemory()
		tres, err := sys.SpMVTwoStep(graph, rank)
		if err != nil {
			return err
		}
		tsCycles += uint64(tres.TotalCycles)

		// rank <- damping*A*rank + (1-damping)/N
		next := fres.Y
		for i := range next {
			next[i] = damping*next[i] + (1-damping)/nodes
		}
		delta := l1diff(rank, next)
		rank = next
		fmt.Fprintf(w, "iteration %d: plan [%s], delta %.2e\n", it, fres.Plan, delta)
	}

	top, val := argmax(rank)
	fmt.Fprintf(w, "\nhighest-rank node: %d (score %.5f)\n", top, val)
	fmt.Fprintf(w, "Fafnir total: %d cycles (%.1f us); Two-Step: %d cycles (%.1f us); speedup %.2fx\n",
		fafCycles, fafnir.CyclesToSeconds(fafCycles)*1e6,
		tsCycles, fafnir.CyclesToSeconds(tsCycles)*1e6,
		float64(tsCycles)/float64(fafCycles))
	return nil
}

// normalizeColumns scales every column of the adjacency matrix to sum to 1.
func normalizeColumns(m *fafnir.Matrix) {
	colSum := make([]float32, m.Cols)
	for r := range m.ColIdx {
		for i, c := range m.ColIdx[r] {
			colSum[c] += float32(math.Abs(float64(m.Vals[r][i])))
		}
	}
	for r := range m.ColIdx {
		for i, c := range m.ColIdx[r] {
			if colSum[c] != 0 {
				m.Vals[r][i] /= colSum[c]
			}
		}
	}
}

func l1diff(a, b fafnir.Vector) float64 {
	var s float64
	for i := range a {
		s += math.Abs(float64(a[i] - b[i]))
	}
	return s
}

func argmax(v fafnir.Vector) (int, float32) {
	best, bv := 0, v[0]
	for i, x := range v {
		if x > bv {
			best, bv = i, x
		}
	}
	return best, bv
}
