#!/bin/sh
# bench.sh — run every benchmark in the repository with -benchmem and write a
# machine-readable perf snapshot, so each PR leaves a trajectory point future
# changes can be compared against.
#
#   ./scripts/bench.sh                 # writes BENCH_9.json at the repo root
#   BENCH_OUT=perf.json ./scripts/bench.sh
#   BENCH_TIME=1s BENCH_COUNT=5 ./scripts/bench.sh   # slower, tighter numbers
#
# Each benchmark runs BENCH_COUNT times (default 5) at -benchtime BENCH_TIME
# (default 1x: one iteration per run, bounding wall-clock — the exhibit
# benchmarks regenerate entire paper figures per iteration). The snapshot
# records the fastest run's ns/op, and the MINIMUM bytes/op and allocs/op
# across runs: concurrent benchmarks allocate a scheduler-dependent amount
# of goroutine/channel machinery per run, so the minimum — not whichever
# run happened to be fastest — is the reproducible statistic. The slowest
# run's ns/op is recorded alongside (ns_max_per_op): the min-to-max span is
# the benchmark's own measured noise on this machine, and bench_diff.sh
# widens its regression threshold to that span so a benchmark is never
# failed for jitter its own baseline already exhibited.
set -eu

cd "$(dirname "$0")/.."

OUT=${BENCH_OUT:-BENCH_9.json}
COUNT=${BENCH_COUNT:-5}
TIME=${BENCH_TIME:-1x}

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "==> go test -run '^\$' -bench . -benchmem -count=$COUNT -benchtime=$TIME ./..."
go test -run '^$' -bench . -benchmem -count="$COUNT" -benchtime="$TIME" ./... | tee "$RAW"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v gover="$(go env GOVERSION)" \
    -v cpus="$(nproc 2>/dev/null || echo 1)" \
    -v count="$COUNT" -v btime="$TIME" '
/^pkg: / { pkg = $2 }
/^Benchmark/ && NF >= 4 {
    name = $1
    sub(/-[0-9]+$/, "", name)
    key = pkg "|" name
    # Benchmarks may emit custom ReportMetric columns, so locate each value
    # by its unit token rather than by field position.
    v_ns = ""; v_b = ""; v_a = ""
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op") v_ns = $i
        if ($(i + 1) == "B/op") v_b = $i
        if ($(i + 1) == "allocs/op") v_a = $i
    }
    if (v_ns == "") next
    if (!(key in ns) || v_ns + 0 < ns[key] + 0) ns[key] = v_ns
    if (!(key in nsmax) || v_ns + 0 > nsmax[key] + 0) nsmax[key] = v_ns
    # Memory stats take the min independently of which run was fastest:
    # concurrent benchmarks allocate scheduler-dependent extras some runs.
    if (!(key in bytes) || v_b + 0 < bytes[key] + 0) bytes[key] = v_b + 0
    if (!(key in allocs) || v_a + 0 < allocs[key] + 0) allocs[key] = v_a + 0
    if (!(key in seen)) { order[++n] = key; seen[key] = 1 }
}
END {
    print "{"
    printf "  \"generated\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", gover
    printf "  \"cpus\": %d,\n", cpus
    printf "  \"count\": %d,\n", count
    printf "  \"benchtime\": \"%s\",\n", btime
    print "  \"benchmarks\": ["
    for (i = 1; i <= n; i++) {
        split(order[i], kp, "|")
        # %.0f, not %d: some awks (mawk) clamp %d at INT32_MAX, which
        # silently recorded 2147483647 for any benchmark slower than ~2.1 s.
        printf "    {\"pkg\": \"%s\", \"name\": \"%s\", \"ns_per_op\": %.0f, \"ns_max_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f}%s\n", \
            kp[1], kp[2], ns[order[i]], nsmax[order[i]], bytes[order[i]], allocs[order[i]], (i < n ? "," : "")
    }
    print "  ]"
    print "}"
}' "$RAW" > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)"
