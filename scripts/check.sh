#!/bin/sh
# check.sh — the repo's tier-1+ gate. Everything here must pass before a
# change lands:
#
#   1. go vet        — static checks
#   2. staticcheck   — soft gate: runs when installed, skipped otherwise
#   3. go build      — every package compiles
#   4. go test -race — full suite under the race detector
#   5. fafnir -race  — the concurrent engine package again at GOMAXPROCS=1
#                      and at the host default, so the worker-pool paths are
#                      exercised both fully serialized and fully interleaved
#   6. fuzz corpus   — FuzzCodec's seed corpus replayed in -run mode
#                      (no fuzzing; deterministic and fast)
#
# Long-running fuzzing is opt-in, not part of the gate:
#
#   go test -fuzz=FuzzCodec -fuzztime=30s ./internal/header
#
# Run from the repo root: ./scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
	echo "==> staticcheck ./..."
	staticcheck ./...
else
	echo "==> staticcheck not installed; skipping (soft gate)"
fi

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -race ./internal/fafnir . (GOMAXPROCS=1)"
GOMAXPROCS=1 go test -race -count=1 ./internal/fafnir .

echo "==> go test -race ./internal/fafnir . (GOMAXPROCS default)"
go test -race -count=1 ./internal/fafnir .

echo "==> fuzz corpus (replay, -run mode)"
go test -run 'Fuzz' ./internal/header/

echo "OK: all checks passed"
