#!/bin/sh
# check.sh — the repo's tier-1+ gate. Everything here must pass before a
# change lands:
#
#   1. go vet        — static checks
#   2. staticcheck   — soft gate: runs when installed, skipped otherwise
#   3. go build      — every package compiles
#   4. go test -race — full suite under the race detector (includes the
#                      internal/oracle conformance sweep: 50+ seeded random
#                      workloads replayed through every engine against the
#                      independent reference model)
#   5. fafnir -race  — the concurrent engine package again at GOMAXPROCS=1
#                      and at the host default, so the worker-pool paths are
#                      exercised both fully serialized and fully interleaved
#   6. conformance   — the oracle sweep once more with -count=1, so the gate
#                      never passes on a cached test result
#   7. fuzz corpus   — FuzzCodec's, FuzzBatchBuild's, and FuzzCacheOps' seed
#                      corpora replayed in -run mode (no fuzzing;
#                      deterministic and fast)
#   8. coverage      — every internal/ package must keep statement coverage
#                      at or above the floor (80%)
#   9. telemetry     — run fafnir-sim with -trace-out, validate the emitted
#                      Chrome trace with fafnir-trace validate (well-formed
#                      JSON, known phases, monotonic timestamps per lane),
#                      and require fafnir-trace report to attribute >= 95%
#                      of the traced window to named pipeline stages
#  10. server smoke  — build fafnir-serve and fafnir-loadgen, boot the
#                      service on a free port, fire a concurrent burst,
#                      scrape /metrics (including the registry's telemetry
#                      families, sub-millisecond latency buckets, the
#                      per-stage latency histograms, and the SLO burn-rate
#                      gauges), record the burst with -record and replay it
#                      with -replay requiring identical request counts, then
#                      SIGTERM and require a clean drain (exit 0 with
#                      in-flight work finished)
#  11. chaos gate    — boot a 4-shard fleet with shard 1 killed by
#                      -fault-storm, fire a burst through the router, and
#                      require zero 5xx (every request rides replica
#                      failover), degraded responses surfaced to clients,
#                      the shard_dark metric tripped on /metrics, and a
#                      clean SIGTERM drain
#  12. qos gate      — boot with -qos, fire a seeded open-loop burst at 2x
#                      the queue bound with a 20/80 high/low priority mix,
#                      and require zero high-priority sheds, at least one
#                      low-priority shed, and the shed_total{lane} counters
#                      agreeing with the client's view
#  13. cache gate    — run the same seeded Zipf workload against a cache-off
#                      and a cache-on server; the cache must cut backend
#                      reads per query by >= 25% at a >= 50% hit ratio
#  14. federation    — boot a 2-fleet x 4-shard federation with -verify
#      gate            (every batch re-checked bit-for-bit against the
#                      reference oracle server-side), fire a seeded burst,
#                      and require zero non-200s, the federation_* and
#                      rnet_combines_total families live on /metrics, and a
#                      clean SIGTERM drain
#  15. speedup gate  — BenchmarkRunTree/parallel must beat /serial by at
#                      least 1.3x when the host has >= 4 CPUs (the async
#                      scheduler's reason to exist); skipped with a notice
#                      on smaller runners, where the scheduler cannot win
#
# Long-running fuzzing is opt-in, not part of the gate:
#
#   go test -fuzz=FuzzCodec -fuzztime=30s ./internal/header
#   go test -fuzz=FuzzBatchBuild -fuzztime=30s ./internal/batch
#
# Perf regressions are gated separately by scripts/bench_diff.sh (benchmarks
# are too slow for every pre-land run).
#
# Run from the repo root: ./scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

COVER_FLOOR=${COVER_FLOOR:-80}

echo "==> go vet ./..."
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
	echo "==> staticcheck ./..."
	staticcheck ./...
else
	echo "==> staticcheck not installed; skipping (soft gate)"
fi

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -race ./internal/fafnir . (GOMAXPROCS=1)"
GOMAXPROCS=1 go test -race -count=1 ./internal/fafnir .

echo "==> go test -race ./internal/fafnir . (GOMAXPROCS default)"
go test -race -count=1 ./internal/fafnir .

echo "==> oracle conformance sweep (-race, -count=1)"
go test -race -count=1 -run 'TestConformance' ./internal/oracle

echo "==> fuzz corpus (replay, -run mode)"
go test -run 'Fuzz' ./internal/header/ ./internal/batch/ ./internal/cache/

echo "==> coverage floor (internal packages >= ${COVER_FLOOR}%)"
go test -cover ./internal/... | awk -v floor="$COVER_FLOOR" '
{ print }
/coverage:/ {
    for (i = 1; i <= NF; i++) {
        if ($i == "coverage:" && $(i + 1) ~ /%$/) {
            pct = $(i + 1); sub(/%.*/, "", pct)
            if (pct + 0 < floor) { bad[$2] = pct; n++ }
        }
    }
}
END {
    for (p in bad) printf "coverage below %s%%: %s at %s%%\n", floor, p, bad[p]
    exit n > 0
}'

echo "==> telemetry: traced fafnir-sim run validates as Chrome trace JSON"
SMOKE=$(mktemp -d)
SERVE_PID=
FLEET_PID=
QOS_PID=
CACHE_PID=
FED_PID=
# The kill must not decide the script's exit status: with every PID already
# empty (the normal clean path) it fails, and a failing EXIT trap overrides
# the exit code under set -e.
trap 'kill "$SERVE_PID" "$FLEET_PID" "$QOS_PID" "$CACHE_PID" "$FED_PID" 2>/dev/null || true; rm -rf "$SMOKE"' EXIT
go build -o "$SMOKE/fafnir-sim" ./cmd/fafnir-sim
go build -o "$SMOKE/fafnir-trace" ./cmd/fafnir-trace
"$SMOKE/fafnir-sim" -mode lookup -engine fafnir -batch 8 -q 8 -rows 4096 \
    -trace-out "$SMOKE/run-trace.json" > "$SMOKE/sim.log" 2>&1 \
    || { cat "$SMOKE/sim.log"; echo "telemetry: traced sim run failed"; exit 1; }
"$SMOKE/fafnir-trace" validate "$SMOKE/run-trace.json" \
    || { echo "telemetry: emitted trace failed validation"; exit 1; }
"$SMOKE/fafnir-trace" report "$SMOKE/run-trace.json" > "$SMOKE/report.log" 2>&1 \
    || { cat "$SMOKE/report.log"; echo "telemetry: trace report failed"; exit 1; }
[ -s "$SMOKE/report.log" ] || { echo "telemetry: trace report produced no output"; exit 1; }
# The report must attribute >= 95% of the simulated window to named stages:
# unattributed time means a pipeline stage lost its spans.
awk '/^attributed: /{ pct = $7; gsub(/[(%]/, "", pct)
    printf "telemetry: report attributes %s%% of the traced window\n", pct
    found = 1; ok = (pct + 0 >= 95) }
END { exit !(found && ok) }' "$SMOKE/report.log" \
    || { cat "$SMOKE/report.log"; echo "telemetry: report attributes < 95% of the smoke trace"; exit 1; }

echo "==> server smoke: boot fafnir-serve, drive it, drain it"
go build -o "$SMOKE/fafnir-serve" ./cmd/fafnir-serve
go build -o "$SMOKE/fafnir-loadgen" ./cmd/fafnir-loadgen

"$SMOKE/fafnir-serve" -addr 127.0.0.1:0 -rows 4096 -linger 500us \
    > "$SMOKE/serve.log" 2>&1 &
SERVE_PID=$!

# Startup handshake: fafnir-serve prints "listening on host:port" once the
# listener is bound; poll for it rather than sleeping a fixed interval.
ADDR=
i=0
while [ $i -lt 100 ]; do
    ADDR=$(awk '/^listening on /{print $3; exit}' "$SMOKE/serve.log" 2>/dev/null || true)
    [ -n "$ADDR" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$SMOKE/serve.log"; echo "smoke: server died on startup"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$ADDR" ] || { cat "$SMOKE/serve.log"; echo "smoke: server never announced its port"; exit 1; }

"$SMOKE/fafnir-loadgen" -url "http://$ADDR" -clients 4 -requests 64 \
    -duration 10s -rows 4096 -dump-metrics > "$SMOKE/loadgen.log" 2>&1 \
    || { cat "$SMOKE/loadgen.log"; echo "smoke: loadgen failed"; exit 1; }
grep -q '^fafnir_serve_queries_total [1-9]' "$SMOKE/loadgen.log" \
    || { cat "$SMOKE/loadgen.log"; echo "smoke: /metrics missing served queries"; exit 1; }
# The registry-backed families PR 5 added: memory-system counters folded from
# the backend, and latency buckets that resolve sub-millisecond lookups.
grep -q '^fafnir_serve_row_misses_total ' "$SMOKE/loadgen.log" \
    || { cat "$SMOKE/loadgen.log"; echo "smoke: /metrics missing telemetry registry families"; exit 1; }
grep -q '^fafnir_serve_pe_reduces_total ' "$SMOKE/loadgen.log" \
    || { cat "$SMOKE/loadgen.log"; echo "smoke: /metrics missing PE action counters"; exit 1; }
grep -q 'fafnir_serve_request_seconds_bucket{le="2.5e-05"}' "$SMOKE/loadgen.log" \
    || { cat "$SMOKE/loadgen.log"; echo "smoke: latency histogram lacks sub-millisecond buckets"; exit 1; }
# The per-stage latency attribution histograms: every served request feeds
# all six stages, so the backend stage's count must be live after a burst.
grep -Eq 'fafnir_serve_stage_seconds_count\{stage="backend"\} [1-9]' "$SMOKE/loadgen.log" \
    || { cat "$SMOKE/loadgen.log"; echo "smoke: stage-latency histograms missing or empty"; exit 1; }
grep -q 'fafnir_serve_stage_seconds_bucket{stage="queue"' "$SMOKE/loadgen.log" \
    || { cat "$SMOKE/loadgen.log"; echo "smoke: queue stage histogram missing"; exit 1; }
# The SLO flight recorder's burn-rate gauges, one per lane.
for lane in high normal low; do
    grep -q "fafnir_slo_burn_rate{lane=\"$lane\"}" "$SMOKE/loadgen.log" \
        || { cat "$SMOKE/loadgen.log"; echo "smoke: /metrics missing burn rate for lane $lane"; exit 1; }
done

# Record the burst shape, replay it verbatim, and require both runs to
# report the same request count — the flight-recorder repro loop.
"$SMOKE/fafnir-loadgen" -url "http://$ADDR" -clients 2 -requests 32 \
    -duration 10s -rows 4096 -record "$SMOKE/record.jsonl" \
    > "$SMOKE/record.log" 2>&1 \
    || { cat "$SMOKE/record.log"; echo "smoke: recorded loadgen run failed"; exit 1; }
"$SMOKE/fafnir-loadgen" -url "http://$ADDR" -replay "$SMOKE/record.jsonl" \
    -duration 10s > "$SMOKE/replay.log" 2>&1 \
    || { cat "$SMOKE/replay.log"; echo "smoke: replayed loadgen run failed"; exit 1; }
REC_SENT=$(awk '/^sent /{print $2; exit}' "$SMOKE/record.log")
REP_SENT=$(awk '/^sent /{print $2; exit}' "$SMOKE/replay.log")
[ -n "$REC_SENT" ] && [ "$REC_SENT" = "$REP_SENT" ] \
    || { cat "$SMOKE/record.log" "$SMOKE/replay.log"; \
         echo "smoke: replay sent ${REP_SENT:-nothing}, recorded run sent ${REC_SENT:-nothing}"; exit 1; }
echo "smoke: record/replay both sent $REC_SENT requests"

kill -TERM "$SERVE_PID"
SMOKE_RC=0
wait "$SERVE_PID" || SMOKE_RC=$?
[ "$SMOKE_RC" -eq 0 ] || { cat "$SMOKE/serve.log"; echo "smoke: server exited $SMOKE_RC on SIGTERM"; exit 1; }
grep -q 'drained cleanly' "$SMOKE/serve.log" \
    || { cat "$SMOKE/serve.log"; echo "smoke: no clean drain line"; exit 1; }
grep 'drained cleanly' "$SMOKE/serve.log"
SERVE_PID=

echo "==> chaos gate: 4-shard fleet survives losing shard 1 mid-burst"
"$SMOKE/fafnir-serve" -addr 127.0.0.1:0 -shards 4 -rows 4096 -linger 500us \
    -fault-storm "shard=1@1;seed=7" > "$SMOKE/fleet.log" 2>&1 &
FLEET_PID=$!

FADDR=
i=0
while [ $i -lt 100 ]; do
    FADDR=$(awk '/^listening on /{print $3; exit}' "$SMOKE/fleet.log" 2>/dev/null || true)
    [ -n "$FADDR" ] && break
    kill -0 "$FLEET_PID" 2>/dev/null || { cat "$SMOKE/fleet.log"; echo "chaos: fleet died on startup"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$FADDR" ] || { cat "$SMOKE/fleet.log"; echo "chaos: fleet never announced its port"; exit 1; }

# -rows matches the fleet's index space (4096 rows x 32 tables).
"$SMOKE/fafnir-loadgen" -url "http://$FADDR" -clients 4 -requests 64 \
    -duration 10s -rows 131072 -dump-metrics > "$SMOKE/chaos.log" 2>&1 \
    || { cat "$SMOKE/chaos.log"; echo "chaos: loadgen failed"; exit 1; }
# Every request must succeed: the dead shard's traffic fails over to its
# replica shard instead of surfacing as 5xx.
grep -q ' 64 ok, 0 overload (503), 0 deadline (504), 0 other$' "$SMOKE/chaos.log" \
    || { cat "$SMOKE/chaos.log"; echo "chaos: requests failed through the dead shard"; exit 1; }
grep -q '^robustness: [1-9][0-9]* degraded' "$SMOKE/chaos.log" \
    || { cat "$SMOKE/chaos.log"; echo "chaos: no degraded responses surfaced to clients"; exit 1; }
grep -q 'fafnir_router_shard_dark_total{shard="1"} [1-9]' "$SMOKE/chaos.log" \
    || { cat "$SMOKE/chaos.log"; echo "chaos: breaker never tripped shard 1 dark"; exit 1; }
grep -q 'fafnir_router_failovers_total{shard="1"} [1-9]' "$SMOKE/chaos.log" \
    || { cat "$SMOKE/chaos.log"; echo "chaos: no failovers recorded for shard 1"; exit 1; }

kill -TERM "$FLEET_PID"
CHAOS_RC=0
wait "$FLEET_PID" || CHAOS_RC=$?
[ "$CHAOS_RC" -eq 0 ] || { cat "$SMOKE/fleet.log"; echo "chaos: fleet exited $CHAOS_RC on SIGTERM"; exit 1; }
grep -q 'drained cleanly' "$SMOKE/fleet.log" \
    || { cat "$SMOKE/fleet.log"; echo "chaos: no clean drain line"; exit 1; }
grep 'drained cleanly' "$SMOKE/fleet.log"
FLEET_PID=

# wait_addr LOGFILE PID LABEL: poll LOGFILE for the startup handshake line
# and print the announced host:port.
wait_addr() {
    _addr=
    _i=0
    while [ $_i -lt 100 ]; do
        _addr=$(awk '/^listening on /{print $3; exit}' "$1" 2>/dev/null || true)
        [ -n "$_addr" ] && break
        kill -0 "$2" 2>/dev/null || { cat "$1" >&2; echo "$3: server died on startup" >&2; return 1; }
        sleep 0.1
        _i=$((_i + 1))
    done
    [ -n "$_addr" ] || { cat "$1" >&2; echo "$3: server never announced its port" >&2; return 1; }
    echo "$_addr"
}

echo "==> qos gate: overload sheds low-priority traffic first"
# Batch capacity above the queue bound makes every flush linger-bound, and
# the 200ms linger lets the whole burst land inside one window — so admission,
# not service speed, decides who sheds: the low lane caps at 32 queued queries
# (0.5 x 64) while the burst's 25 high-priority requests always fit the full
# bound (25 + 32 < 64), whatever the arrival timing.
"$SMOKE/fafnir-serve" -addr 127.0.0.1:0 -rows 4096 -batch 128 -queue 64 \
    -linger 200ms -qos -cache-mb 16 > "$SMOKE/qos-serve.log" 2>&1 &
QOS_PID=$!
QADDR=$(wait_addr "$SMOKE/qos-serve.log" "$QOS_PID" "qos") || exit 1

# Seeded open-loop burst at 2x the queue bound, 20/80 high/low mix.
"$SMOKE/fafnir-loadgen" -url "http://$QADDR" -qps 8000 -requests 128 \
    -duration 5s -rows 4096 -seed 11 -mix "high=20,low=80" \
    > "$SMOKE/qos.log" 2>&1 \
    || { cat "$SMOKE/qos.log"; echo "qos: loadgen failed"; exit 1; }
grep -Eq 'lane high: [1-9][0-9]* ok, 0 shed \(503\), 0 other' "$SMOKE/qos.log" \
    || { cat "$SMOKE/qos.log"; echo "qos: high-priority traffic was shed (or failed)"; exit 1; }
grep -Eq 'lane low: [0-9]+ ok, [1-9][0-9]* shed \(503\)' "$SMOKE/qos.log" \
    || { cat "$SMOKE/qos.log"; echo "qos: overload at 2x queue capacity shed no low-priority traffic"; exit 1; }
grep -Eq 'server: shed high=0 normal=0 low=[1-9]' "$SMOKE/qos.log" \
    || { cat "$SMOKE/qos.log"; echo "qos: shed_total counters disagree with the client's view"; exit 1; }
grep -E 'lane (high|low):|server: shed' "$SMOKE/qos.log"

kill -TERM "$QOS_PID"
QOS_RC=0
wait "$QOS_PID" || QOS_RC=$?
[ "$QOS_RC" -eq 0 ] || { cat "$SMOKE/qos-serve.log"; echo "qos: server exited $QOS_RC on SIGTERM"; exit 1; }
QOS_PID=

echo "==> cache gate: hot-embedding cache cuts backend reads per query"
run_cache_pass() { # run_cache_pass LABEL EXTRA_SERVE_FLAGS...
    _label=$1; shift
    "$SMOKE/fafnir-serve" -addr 127.0.0.1:0 -rows 4096 -linger 500us "$@" \
        > "$SMOKE/cache-$_label-serve.log" 2>&1 &
    CACHE_PID=$!
    _caddr=$(wait_addr "$SMOKE/cache-$_label-serve.log" "$CACHE_PID" "cache($_label)") || return 1
    "$SMOKE/fafnir-loadgen" -url "http://$_caddr" -clients 2 -requests 256 \
        -duration 20s -rows 4096 -zipf 1.3 -seed 3 -dump-metrics \
        > "$SMOKE/cache-$_label.log" 2>&1 \
        || { cat "$SMOKE/cache-$_label.log"; echo "cache($_label): loadgen failed"; return 1; }
    kill -TERM "$CACHE_PID"
    wait "$CACHE_PID" || { cat "$SMOKE/cache-$_label-serve.log"; echo "cache($_label): bad exit"; return 1; }
    CACHE_PID=
}
run_cache_pass off || exit 1
run_cache_pass on -cache-mb 64 || exit 1
awk '
FILENAME ~ /cache-off/ && /^fafnir_serve_dram_reads_total /  { offreads = $2 }
FILENAME ~ /cache-off/ && /^fafnir_serve_queries_total /     { offq = $2 }
FILENAME ~ /cache-on/  && /^fafnir_serve_dram_reads_total /  { onreads = $2 }
FILENAME ~ /cache-on/  && /^fafnir_serve_queries_total /     { onq = $2 }
FILENAME ~ /cache-on/  && /^fafnir_cache_hits_total /        { hits = $2 }
FILENAME ~ /cache-on/  && /^fafnir_cache_misses_total /      { misses = $2 }
END {
    if (!offq || !onq) { print "cache gate: missing metrics"; exit 1 }
    off = offreads / offq; on = onreads / onq
    ratio = hits / (hits + misses)
    printf "cache gate: %.2f reads/query off, %.2f on (%.0f%% saved), hit ratio %.2f\n", \
        off, on, 100 * (1 - on / off), ratio
    if (on > 0.75 * off) { print "cache gate: reads/query reduction below 25%"; exit 1 }
    if (ratio < 0.5)     { print "cache gate: hit ratio below 0.5"; exit 1 }
}' "$SMOKE/cache-off.log" "$SMOKE/cache-on.log" \
    || { echo "cache gate failed"; exit 1; }

echo "==> federation gate: 2-fleet x 4-shard federation, oracle-verified"
# -verify makes the server re-check every healthy batch bit-for-bit against
# the reference oracle before responding: a combine-path divergence anywhere
# in the shard or fleet reduction trees turns into a 5xx, so the "0 other"
# assertion below doubles as an end-to-end oracle-exactness gate.
"$SMOKE/fafnir-serve" -addr 127.0.0.1:0 -fleets 2 -shards 4 -radix 2 \
    -rows 4096 -linger 500us -verify > "$SMOKE/fed-serve.log" 2>&1 &
FED_PID=$!
FEDADDR=$(wait_addr "$SMOKE/fed-serve.log" "$FED_PID" "federation") || exit 1
grep -q '^federation: 2 fleets x 4 shards' "$SMOKE/fed-serve.log" \
    || { cat "$SMOKE/fed-serve.log"; echo "federation: startup line missing the topology"; exit 1; }

# -rows matches the federation's index space (4096 rows x 32 tables).
"$SMOKE/fafnir-loadgen" -url "http://$FEDADDR" -clients 4 -requests 64 \
    -duration 10s -rows 131072 -seed 5 -op mean -dump-metrics \
    > "$SMOKE/fed.log" 2>&1 \
    || { cat "$SMOKE/fed.log"; echo "federation: loadgen failed"; exit 1; }
grep -q ' 64 ok, 0 overload (503), 0 deadline (504), 0 other$' "$SMOKE/fed.log" \
    || { cat "$SMOKE/fed.log"; echo "federation: requests failed (oracle verify rejects on divergence)"; exit 1; }
grep -q '^fafnir_federation_batches_total [1-9]' "$SMOKE/fed.log" \
    || { cat "$SMOKE/fed.log"; echo "federation: no batches counted on /metrics"; exit 1; }
grep -q '^fafnir_federation_verified_total [1-9]' "$SMOKE/fed.log" \
    || { cat "$SMOKE/fed.log"; echo "federation: verify mode never checked a batch"; exit 1; }
grep -Eq '^fafnir_federation_fleet_lookups_total\{fleet="0"\} [1-9]' "$SMOKE/fed.log" \
    || { cat "$SMOKE/fed.log"; echo "federation: fleet 0 served no sub-lookups"; exit 1; }
grep -Eq '^fafnir_federation_fleet_lookups_total\{fleet="1"\} [1-9]' "$SMOKE/fed.log" \
    || { cat "$SMOKE/fed.log"; echo "federation: fleet 1 served no sub-lookups"; exit 1; }
grep -q '^fafnir_rnet_combines_total [1-9]' "$SMOKE/fed.log" \
    || { cat "$SMOKE/fed.log"; echo "federation: cross-fleet rnet tree performed no combines"; exit 1; }

kill -TERM "$FED_PID"
FED_RC=0
wait "$FED_PID" || FED_RC=$?
[ "$FED_RC" -eq 0 ] || { cat "$SMOKE/fed-serve.log"; echo "federation: server exited $FED_RC on SIGTERM"; exit 1; }
grep -q 'drained cleanly' "$SMOKE/fed-serve.log" \
    || { cat "$SMOKE/fed-serve.log"; echo "federation: no clean drain line"; exit 1; }
grep 'drained cleanly' "$SMOKE/fed-serve.log"
FED_PID=

echo "==> speedup gate: async scheduler vs serial tree walk"
CORES=${GOMAXPROCS:-$(nproc 2>/dev/null || echo 1)}
if [ "$CORES" -lt 4 ]; then
    echo "speedup gate: skipped ($CORES CPU(s); the scheduler needs >= 4 to be gated)"
else
    SPEEDUP_MIN=${SPEEDUP_MIN:-1.3}
    go test -run '^$' -bench 'BenchmarkRunTree' -benchtime 20x -count 3 \
        ./internal/fafnir/ > "$SMOKE/runtree.bench" \
        || { cat "$SMOKE/runtree.bench"; echo "speedup gate: benchmark failed"; exit 1; }
    awk -v min="$SPEEDUP_MIN" '
    /^BenchmarkRunTree\/serial/   { if (!ser || $3 < ser) ser = $3 }
    /^BenchmarkRunTree\/parallel/ { if (!par || $3 < par) par = $3 }
    END {
        if (!ser || !par) { print "speedup gate: missing benchmark output"; exit 1 }
        printf "speedup gate: serial %d ns/op, parallel %d ns/op -> %.2fx (floor %.1fx)\n", ser, par, ser / par, min
        exit !(ser / par >= min)
    }' "$SMOKE/runtree.bench" \
        || { cat "$SMOKE/runtree.bench"; echo "speedup gate: parallel tree walk below ${SPEEDUP_MIN}x over serial"; exit 1; }
fi

echo "OK: all checks passed"
