#!/bin/sh
# check.sh — the repo's tier-1+ gate. Everything here must pass before a
# change lands:
#
#   1. go vet        — static checks
#   2. staticcheck   — soft gate: runs when installed, skipped otherwise
#   3. go build      — every package compiles
#   4. go test -race — full suite under the race detector (includes the
#                      internal/oracle conformance sweep: 50+ seeded random
#                      workloads replayed through every engine against the
#                      independent reference model)
#   5. fafnir -race  — the concurrent engine package again at GOMAXPROCS=1
#                      and at the host default, so the worker-pool paths are
#                      exercised both fully serialized and fully interleaved
#   6. conformance   — the oracle sweep once more with -count=1, so the gate
#                      never passes on a cached test result
#   7. fuzz corpus   — FuzzCodec's and FuzzBatchBuild's seed corpora replayed
#                      in -run mode (no fuzzing; deterministic and fast)
#   8. coverage      — every internal/ package must keep statement coverage
#                      at or above the floor (80%)
#
# Long-running fuzzing is opt-in, not part of the gate:
#
#   go test -fuzz=FuzzCodec -fuzztime=30s ./internal/header
#   go test -fuzz=FuzzBatchBuild -fuzztime=30s ./internal/batch
#
# Perf regressions are gated separately by scripts/bench_diff.sh (benchmarks
# are too slow for every pre-land run).
#
# Run from the repo root: ./scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

COVER_FLOOR=${COVER_FLOOR:-80}

echo "==> go vet ./..."
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
	echo "==> staticcheck ./..."
	staticcheck ./...
else
	echo "==> staticcheck not installed; skipping (soft gate)"
fi

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -race ./internal/fafnir . (GOMAXPROCS=1)"
GOMAXPROCS=1 go test -race -count=1 ./internal/fafnir .

echo "==> go test -race ./internal/fafnir . (GOMAXPROCS default)"
go test -race -count=1 ./internal/fafnir .

echo "==> oracle conformance sweep (-race, -count=1)"
go test -race -count=1 -run 'TestConformance' ./internal/oracle

echo "==> fuzz corpus (replay, -run mode)"
go test -run 'Fuzz' ./internal/header/ ./internal/batch/

echo "==> coverage floor (internal packages >= ${COVER_FLOOR}%)"
go test -cover ./internal/... | awk -v floor="$COVER_FLOOR" '
{ print }
/coverage:/ {
    for (i = 1; i <= NF; i++) {
        if ($i == "coverage:" && $(i + 1) ~ /%$/) {
            pct = $(i + 1); sub(/%.*/, "", pct)
            if (pct + 0 < floor) { bad[$2] = pct; n++ }
        }
    }
}
END {
    for (p in bad) printf "coverage below %s%%: %s at %s%%\n", floor, p, bad[p]
    exit n > 0
}'

echo "OK: all checks passed"
