#!/bin/sh
# check.sh — the repo's tier-1+ gate. Everything here must pass before a
# change lands:
#
#   1. go vet        — static checks
#   2. go build      — every package compiles
#   3. go test -race — full suite under the race detector
#   4. fuzz corpus   — FuzzCodec's seed corpus replayed in -run mode
#                      (no fuzzing; deterministic and fast)
#
# Long-running fuzzing is opt-in, not part of the gate:
#
#   go test -fuzz=FuzzCodec -fuzztime=30s ./internal/header
#
# Run from the repo root: ./scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> fuzz corpus (replay, -run mode)"
go test -run 'Fuzz' ./internal/header/

echo "OK: all checks passed"
