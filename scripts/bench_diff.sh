#!/bin/sh
# bench_diff.sh — regression gate over the perf trajectory. Runs a fresh
# benchmark sweep (via bench.sh, into a temp file) and compares it against the
# latest checked-in BENCH_*.json snapshot, failing when any benchmark regressed
# by more than BENCH_DIFF_PCT percent (default 15) in ns/op or allocs/op.
#
#   ./scripts/bench_diff.sh                 # compare against newest BENCH_*.json
#   BENCH_DIFF_PCT=25 ./scripts/bench_diff.sh
#   BENCH_BASE=BENCH_1.json ./scripts/bench_diff.sh
#
# Snapshots run each benchmark for very few iterations (see bench.sh), so
# wall-clock numbers below ~1 ms are dominated by first-iteration effects and
# timer noise. The ns/op gate therefore only applies to benchmarks whose
# baseline is at least BENCH_DIFF_FLOOR_NS (default 1e6); allocs/op is
# deterministic and is gated for every benchmark. On shared machines the CPU
# throughput itself drifts between sweeps, so the per-benchmark threshold is
# widened to the baseline's own min-to-max run span (ns_max_per_op, recorded
# by bench.sh) whenever that span exceeds BENCH_DIFF_PCT: a benchmark whose
# five baseline runs already spread 40% apart cannot fail the gate at +20%.
# This makes the script a coarse tripwire for the big perf bugs (an
# accidental O(n^2), a lost buffer pool), not a microbenchmark referee.
# Benchmarks present on only one side are reported but do not fail the gate.
# Improvements never fail.
#
# Baselines written by older bench.sh versions under mawk clamp ns_per_op at
# INT32_MAX (2147483647) for benchmarks slower than ~2.1 s. Such a point
# carries no real timing information, so it is flagged as "clamped" and its
# ns/op diff is skipped; the allocs/op gate still applies.
set -eu

cd "$(dirname "$0")/.."

PCT=${BENCH_DIFF_PCT:-15}
FLOOR=${BENCH_DIFF_FLOOR_NS:-1000000}
BASE=${BENCH_BASE:-$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1)}
if [ -z "$BASE" ] || [ ! -f "$BASE" ]; then
	echo "bench_diff: no BENCH_*.json baseline at the repo root" >&2
	exit 2
fi

FRESH=$(mktemp)
trap 'rm -f "$FRESH"' EXIT

echo "==> baseline: $BASE (threshold: +$PCT%)"
BENCH_OUT="$FRESH" ./scripts/bench.sh >/dev/null

# Flatten one snapshot into "pkg|name ns allocs nsmax" lines. Baselines
# written before bench.sh recorded ns_max_per_op flatten with nsmax=0 (span
# unknown -> plain percentage threshold applies).
flatten() {
	tr ',' '\n' < "$1" | tr -d ' "{}[]' | awk -F: '
	$1 == "pkg"           { pkg = $2 }
	$1 == "name"          { name = $2; nsmax = 0 }
	$1 == "ns_per_op"     { ns = $2 }
	$1 == "ns_max_per_op" { nsmax = $2 }
	$1 == "allocs_per_op" { print pkg "|" name, ns, $2, nsmax }'
}

flatten "$BASE" > "$FRESH.base"
flatten "$FRESH" > "$FRESH.new"
trap 'rm -f "$FRESH" "$FRESH.base" "$FRESH.new"' EXIT

awk -v pct="$PCT" -v floor="$FLOOR" '
NR == FNR { base_ns[$1] = $2; base_al[$1] = $3; base_max[$1] = $4; next }
{
    new_seen[$1] = 1
    # A benchmark the baseline has never seen is "new", never a regression:
    # a PR adding a subsystem brings its benchmarks with it, and the first
    # snapshot that includes them becomes their baseline.
    if (!($1 in base_ns)) { printf "  new        %-60s (no baseline)\n", $1; fresh++; next }
    if (base_ns[$1] == 2147483647) {
        printf "  clamped    %-60s baseline ns/op hit INT32_MAX; skipping ns diff (now %.0f)\n", $1, $2
        ns_d = 0
    } else {
        ns_d = (base_ns[$1] >= floor) ? 100 * ($2 - base_ns[$1]) / base_ns[$1] : 0
    }
    al_d = base_al[$1] > 0 ? 100 * ($3 - base_al[$1]) / base_al[$1] : 0
    # Per-benchmark ns threshold: the baseline run-to-run span, when it is
    # larger than the global percentage.
    span = 0
    if (base_max[$1] + 0 > base_ns[$1] + 0 && base_ns[$1] + 0 > 0)
        span = 100 * (base_max[$1] - base_ns[$1]) / base_ns[$1]
    allow = (span > pct) ? span : pct
    if (ns_d > allow || al_d > pct) {
        printf "  REGRESSED  %-60s ns/op %+.1f%% (%d -> %d, threshold %.0f%%)  allocs/op %+.1f%% (%d -> %d)\n", \
            $1, ns_d, base_ns[$1], $2, allow, al_d, base_al[$1], $3
        bad++
    } else if (ns_d > pct) {
        printf "  noisy-ok   %-60s ns/op %+.1f%% within baseline span %.0f%%\n", $1, ns_d, span
    } else if (ns_d < -pct) {
        printf "  improved   %-60s ns/op %+.1f%%\n", $1, ns_d
    }
}
END {
    for (k in base_ns) if (!(k in new_seen)) printf "  missing    %-60s (in baseline, not in fresh run)\n", k
    if (bad) { printf "bench_diff: %d benchmark(s) regressed beyond %s%%\n", bad, pct; exit 1 }
    tail = fresh ? sprintf(" (%d new benchmark(s) without a baseline)", fresh) : ""
    print "bench_diff: no regression beyond " pct "%" tail
}' "$FRESH.base" "$FRESH.new"
